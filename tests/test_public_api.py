"""Smoke tests of the top-level public API (what README advertises)."""

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_readme_quickstart_works(self):
        from repro import (
            Foc1Evaluator,
            Foc1Query,
            Rel,
            count,
            graph_structure,
            parse_formula,
            variables,
        )

        g = graph_structure([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4), (4, 1)])
        engine = Foc1Evaluator()

        sentence = parse_formula("forall x. @eq(#(y). E(x, y), 2)")
        assert engine.model_check(g, sentence)

        E = Rel("E", 2)
        x, y = variables("x y")
        degree = count([y], E(x, y))
        assert engine.count(g, degree.eq(2), [x]) == 4

        q = Foc1Query(
            head_variables=(x,), head_terms=(degree,), condition=degree.geq1()
        )
        assert sorted(engine.evaluate_query(g, q)) == [
            (1, 2),
            (2, 2),
            (3, 2),
            (4, 2),
        ]

    def test_error_hierarchy(self):
        assert issubclass(repro.FragmentError, repro.ReproError)
        assert issubclass(repro.ParseError, repro.ReproError)
        assert issubclass(repro.SignatureError, repro.ReproError)
        assert issubclass(repro.BudgetExceededError, repro.ReproError)
        assert issubclass(repro.FaultInjectedError, repro.ReproError)
        assert issubclass(repro.FormatError, repro.ReproError)

    def test_key_names_exported(self):
        for name in [
            "Structure",
            "Signature",
            "Foc1Evaluator",
            "BruteForceEvaluator",
            "Foc1Query",
            "BasicClTerm",
            "ClPolynomial",
            "CoverTerm",
            "NeighbourhoodCover",
            "sparse_cover",
            "play_splitter_game",
            "remove_element",
            "removal_formula",
            "decompose_factored_count",
            "Database",
            "group_by_count",
            "parse_formula",
            "pretty",
            "satisfies",
            "is_foc1",
            # plan layer
            "QueryPlan",
            "PlanCache",
            "PlanExecutor",
            "PlanOptions",
            "compile_plan",
            "canonicalise",
            "default_plan_cache",
            # robustness surface
            "EvaluationBudget",
            "RobustEvaluator",
            "RobustReport",
            "StageReport",
            "FaultInjector",
            "inject_faults",
            "FAULT_SITES",
            "BudgetExceededError",
            "FaultInjectedError",
            # structure I/O
            "FormatError",
            "load_structure",
            "save_structure",
        ]:
            assert hasattr(repro, name), name

    def test_robust_quickstart_works(self):
        from repro import EvaluationBudget, RobustEvaluator, graph_structure, parse_formula

        g = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
        engine = RobustEvaluator(budget=EvaluationBudget(deadline=30.0))
        assert engine.model_check(g, parse_formula("exists x. @eq(#(y). E(x, y), 2)"))
        assert engine.last_report.answered_by == "foc1"

    def test_budget_exhaustion_is_catchable_from_top_level(self):
        import pytest

        from repro import (
            BudgetExceededError,
            EvaluationBudget,
            Foc1Evaluator,
            complete_graph,
            parse_formula,
        )

        engine = Foc1Evaluator(budget=EvaluationBudget(max_steps=100))
        with pytest.raises(BudgetExceededError) as info:
            engine.count(
                complete_graph(8), parse_formula("E(x, y) & E(y, z)"), ["x", "y", "z"]
            )
        assert info.value.steps > 100

    def test_pretty_parse_roundtrip_via_top_level(self):
        phi = repro.parse_formula("exists x. @geq1(#(y). E(x, y))")
        assert repro.parse_formula(repro.pretty(phi)) == phi
