"""Tests for tools/bench_runner.py: condensing and schema validation.

The subprocess pytest run itself is exercised by CI's bench-smoke job;
here we pin the pure parts — folding a pytest-benchmark payload into the
repro-bench schema (including schema 4's parallel speedup section), and
the hand-rolled validator's acceptance and rejection behaviour.
"""

import json
import pathlib
import subprocess
import sys

from tools.bench_runner import (
    SCHEMA_NAME,
    baseline_delta,
    condense,
    delta_table,
    validate_report,
)

REPO = pathlib.Path(__file__).resolve().parent.parent


def raw_payload():
    return {
        "machine_info": {"python_version": "3.12"},
        "benchmarks": [
            {
                "name": "test_engine_counting[grid-100]",
                "fullname": "benchmarks/bench_scaling_counting.py::test_engine_counting[grid-100]",
                "group": None,
                "stats": {
                    "mean": 0.002,
                    "stddev": 0.0001,
                    "min": 0.0018,
                    "rounds": 5,
                },
                "extra_info": {
                    "family": "grid",
                    "metrics": {
                        "counters": {
                            "evaluator.holds.memo.hit": 30,
                            "evaluator.holds.memo.miss": 10,
                        },
                        "histograms": {},
                    },
                    "memo_hit_rate": 0.75,
                },
            }
        ],
    }


class TestCondense:
    def test_folds_into_schema(self):
        report = condense(raw_payload(), quick=True)
        assert report["schema"] == SCHEMA_NAME
        assert report["quick"] is True
        [bench] = report["benchmarks"]
        assert bench["name"] == "test_engine_counting[grid-100]"
        assert bench["module"] == "bench_scaling_counting"
        assert bench["mean_s"] == 0.002
        assert bench["rounds"] == 5
        assert bench["memo_hit_rate"] == 0.75
        assert bench["extra_info"] == {"family": "grid"}  # metrics lifted out
        totals = report["totals"]
        assert totals["benchmarks"] == 1
        assert totals["wall_s"] == 0.002 * 5
        assert totals["memo_hits"] == 30
        assert totals["memo_misses"] == 10
        assert totals["memo_hit_rate"] == 0.75

    def test_condensed_report_is_valid(self):
        assert validate_report(condense(raw_payload(), quick=False)) == []

    def test_empty_run_is_valid(self):
        report = condense({"benchmarks": []}, quick=True)
        assert validate_report(report) == []
        assert report["totals"]["memo_hit_rate"] is None


class TestValidator:
    def test_rejects_wrong_schema_tag(self):
        report = condense(raw_payload(), quick=True)
        report["schema"] = "something-else"
        assert any("schema" in p for p in validate_report(report))

    def test_rejects_negative_timings(self):
        report = condense(raw_payload(), quick=True)
        report["benchmarks"][0]["mean_s"] = -1
        assert any("mean_s" in p for p in validate_report(report))

    def test_rejects_out_of_range_hit_rate(self):
        report = condense(raw_payload(), quick=True)
        report["benchmarks"][0]["memo_hit_rate"] = 1.5
        assert any("memo_hit_rate" in p for p in validate_report(report))

    def test_rejects_inconsistent_totals(self):
        report = condense(raw_payload(), quick=True)
        report["totals"]["benchmarks"] = 7
        assert any("totals.benchmarks" in p for p in validate_report(report))

    def test_rejects_non_integer_counters(self):
        report = condense(raw_payload(), quick=True)
        report["benchmarks"][0]["metrics"]["counters"]["bad"] = "lots"
        assert any("counters" in p for p in validate_report(report))

    def test_rejects_non_dict(self):
        assert validate_report([]) != []


class TestCliValidate:
    def test_validate_subcommand(self, tmp_path):
        target = tmp_path / "report.json"
        target.write_text(json.dumps(condense(raw_payload(), quick=True)))
        completed = subprocess.run(
            [sys.executable, str(REPO / "tools" / "bench_runner.py"),
             "--validate", str(target)],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr
        assert "valid" in completed.stdout

    def test_validate_subcommand_rejects(self, tmp_path):
        target = tmp_path / "report.json"
        target.write_text(json.dumps({"schema": "nope"}))
        completed = subprocess.run(
            [sys.executable, str(REPO / "tools" / "bench_runner.py"),
             "--validate", str(target)],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 1
        assert "invalid" in completed.stderr


def plan_payload():
    """A payload whose metrics carry the plan layer's counters/histograms."""
    payload = raw_payload()
    metrics = payload["benchmarks"][0]["extra_info"]["metrics"]
    metrics["counters"]["plan.cache.hit"] = 9
    metrics["counters"]["plan.cache.miss"] = 1
    metrics["histograms"]["plan.compile.seconds"] = {
        "count": 1,
        "total": 0.004,
        "min": 0.004,
        "max": 0.004,
        "mean": 0.004,
    }
    return payload


class TestPlanCacheFields:
    def test_plan_fields_folded_from_metrics(self):
        report = condense(plan_payload(), quick=True)
        [bench] = report["benchmarks"]
        assert bench["plan_cache_hit_rate"] == 0.9
        assert bench["compile_s"] == 0.004
        totals = report["totals"]
        assert totals["plan_cache_hits"] == 9
        assert totals["plan_cache_misses"] == 1
        assert totals["plan_cache_hit_rate"] == 0.9
        assert totals["compile_s"] == 0.004
        assert totals["execute_s"] == totals["wall_s"] - 0.004

    def test_plan_fields_null_without_plan_metrics(self):
        report = condense(raw_payload(), quick=True)
        [bench] = report["benchmarks"]
        assert bench["plan_cache_hit_rate"] is None
        assert bench["compile_s"] is None
        assert report["totals"]["plan_cache_hit_rate"] is None
        assert report["totals"]["execute_s"] == report["totals"]["wall_s"]

    def test_plan_report_is_valid(self):
        assert validate_report(condense(plan_payload(), quick=True)) == []

    def test_validator_rejects_bad_plan_rate(self):
        report = condense(plan_payload(), quick=True)
        report["benchmarks"][0]["plan_cache_hit_rate"] = 2.0
        assert any("plan_cache_hit_rate" in p for p in validate_report(report))


class TestBaselineDelta:
    def test_matching_benchmarks_produce_rows_and_geomean(self):
        baseline = condense(raw_payload(), quick=True)
        report = condense(plan_payload(), quick=True)
        report["benchmarks"][0]["mean_s"] = 0.001  # 2x speedup vs 0.002
        delta = baseline_delta(report, baseline, "BENCH_pr2.json")
        assert delta["common"] == 1
        [row] = delta["rows"]
        assert row["base_mean_s"] == 0.002
        assert row["mean_s"] == 0.001
        assert abs(row["ratio"] - 0.5) < 1e-12
        assert abs(delta["speedup_geomean"] - 0.5) < 1e-12

    def test_disjoint_reports_share_nothing(self):
        baseline = condense({"benchmarks": []}, quick=True)
        delta = baseline_delta(
            condense(raw_payload(), quick=True), baseline, "old.json"
        )
        assert delta["common"] == 0
        assert delta["speedup_geomean"] is None

    def test_report_with_delta_is_valid(self):
        report = condense(plan_payload(), quick=True)
        report["baseline_delta"] = baseline_delta(
            report, condense(raw_payload(), quick=True), "BENCH_pr2.json"
        )
        assert validate_report(report) == []

    def test_delta_table_renders(self):
        report = condense(plan_payload(), quick=True)
        delta = baseline_delta(
            report, condense(raw_payload(), quick=True), "BENCH_pr2.json"
        )
        lines = delta_table(delta)
        assert "BENCH_pr2.json" in lines[0]
        assert any("bench_scaling_counting" in line for line in lines)


def parallel_payload():
    """A worker-sweep payload like benchmarks/bench_parallel.py emits."""
    payload = raw_payload()
    for workers, mean in ((1, 0.008), (2, 0.005), (4, 0.004)):
        payload["benchmarks"].append(
            {
                "name": f"test_per_cluster_workers[100-{workers}]",
                "fullname": "benchmarks/bench_parallel.py"
                f"::test_per_cluster_workers[100-{workers}]",
                "group": None,
                "stats": {
                    "mean": mean,
                    "stddev": 0.0001,
                    "min": mean,
                    "rounds": 3,
                },
                "extra_info": {
                    "parallel_group": "per_cluster/n=100",
                    "workers": workers,
                },
            }
        )
    return payload


class TestParallelSection:
    def test_speedups_relative_to_workers_one(self):
        report = condense(parallel_payload(), quick=True)
        parallel = report["parallel"]
        assert isinstance(parallel["cpu_count"], int)
        [group] = parallel["groups"]
        assert group["group"] == "per_cluster/n=100"
        rows = {row["workers"]: row for row in group["rows"]}
        assert rows[1]["speedup"] == 1.0
        assert abs(rows[2]["speedup"] - 1.6) < 1e-12
        assert abs(rows[4]["speedup"] - 2.0) < 1e-12

    def test_untagged_benchmarks_stay_out(self):
        report = condense(raw_payload(), quick=True)
        assert report["parallel"]["groups"] == []

    def test_parallel_report_is_valid(self):
        assert validate_report(condense(parallel_payload(), quick=True)) == []

    def test_validator_rejects_bad_workers(self):
        report = condense(parallel_payload(), quick=True)
        report["parallel"]["groups"][0]["rows"][0]["workers"] = 0
        assert any("workers" in p for p in validate_report(report))

    def test_validator_requires_parallel_section(self):
        report = condense(parallel_payload(), quick=True)
        del report["parallel"]
        assert any("parallel" in p for p in validate_report(report))

    def test_table_renders(self):
        from tools.bench_runner import parallel_table

        report = condense(parallel_payload(), quick=True)
        lines = parallel_table(report["parallel"])
        assert "cpu_count" in lines[0]
        assert any("per_cluster/n=100" in line for line in lines)
        empty = parallel_table({"cpu_count": 1, "groups": []})
        assert any("no worker-sweep" in line for line in empty)


def retry_payload():
    """A retry-sweep payload like benchmarks/bench_retry.py emits."""
    payload = raw_payload()
    for retries, mean in ((0, 0.010), (2, 0.0102)):
        payload["benchmarks"].append(
            {
                "name": f"test_per_cluster_retry_overhead[100-{retries}]",
                "fullname": "benchmarks/bench_retry.py"
                f"::test_per_cluster_retry_overhead[100-{retries}]",
                "group": None,
                "stats": {
                    "mean": mean,
                    "stddev": 0.0001,
                    "min": mean,
                    "rounds": 3,
                },
                "extra_info": {
                    "retry_group": "per_cluster/n=100",
                    "retries": retries,
                },
            }
        )
    return payload


class TestRetrySection:
    def test_overhead_relative_to_retries_zero(self):
        report = condense(retry_payload(), quick=True)
        [group] = report["retry_overhead"]["groups"]
        assert group["group"] == "per_cluster/n=100"
        rows = {row["retries"]: row for row in group["rows"]}
        assert rows[0]["overhead"] is None  # the denominator itself
        assert abs(rows[2]["overhead"] - 1.02) < 1e-12

    def test_untagged_benchmarks_stay_out(self):
        report = condense(raw_payload(), quick=True)
        assert report["retry_overhead"]["groups"] == []

    def test_retry_report_is_valid(self):
        assert validate_report(condense(retry_payload(), quick=True)) == []

    def test_validator_rejects_negative_retries(self):
        report = condense(retry_payload(), quick=True)
        report["retry_overhead"]["groups"][0]["rows"][0]["retries"] = -1
        assert any("retries" in p for p in validate_report(report))

    def test_validator_requires_retry_section(self):
        report = condense(retry_payload(), quick=True)
        del report["retry_overhead"]
        assert any("retry_overhead" in p for p in validate_report(report))

    def test_table_renders(self):
        from tools.bench_runner import retry_table

        report = condense(retry_payload(), quick=True)
        lines = retry_table(report["retry_overhead"])
        assert "target < 1.05x" in lines[0]
        assert any("per_cluster/n=100" in line for line in lines)
        empty = retry_table({"groups": []})
        assert any("no retry-sweep" in line for line in empty)


def routing_payload():
    """An auto-vs-cascade payload like benchmarks/bench_routing.py emits."""
    payload = raw_payload()
    metrics = {
        "counters": {
            "cost.route.engine.foc1": 9,
            "cost.route.engine.baseline": 1,
            "cost.route.auto": 8,
            "cost.route.fallback": 2,
            "cost.route.mispick": 1,
        },
        "histograms": {
            "cost.predict.error": {
                "count": 4,
                "total": 2.0,
                "min": 0.1,
                "max": 1.2,
                "mean": 0.5,
            }
        },
    }
    for mode, mean in (("cascade", 0.010), ("auto", 0.009)):
        extra = {"routing_group": "mixed/n=100", "engine_mode": mode}
        if mode == "auto":
            extra["metrics"] = metrics
        payload["benchmarks"].append(
            {
                "name": f"test_routing_mixed_workload[100-{mode}]",
                "fullname": "benchmarks/bench_routing.py"
                f"::test_routing_mixed_workload[100-{mode}]",
                "group": None,
                "stats": {
                    "mean": mean,
                    "stddev": 0.0001,
                    "min": mean,
                    "rounds": 3,
                },
                "extra_info": extra,
            }
        )
    return payload


class TestRoutingSection:
    def test_auto_vs_cascade_ratio(self):
        report = condense(routing_payload(), quick=True)
        routing = report["routing"]
        [group] = routing["groups"]
        assert group["group"] == "mixed/n=100"
        rows = {row["mode"]: row for row in group["rows"]}
        assert rows["cascade"]["vs_cascade"] is None
        assert abs(rows["auto"]["vs_cascade"] - 0.9) < 1e-12

    def test_counter_aggregates(self):
        routing = condense(routing_payload(), quick=True)["routing"]
        assert routing["decisions"] == 10
        assert routing["auto"] == 8
        assert routing["fallback"] == 2
        assert routing["mispicks"] == 1
        assert abs(routing["mispick_rate"] - 0.125) < 1e-12
        assert abs(routing["route_share"]["foc1"] - 0.9) < 1e-12
        assert abs(routing["predict_error"]["mean"] - 0.5) < 1e-12
        assert routing["predict_error"]["max"] == 1.2

    def test_untagged_benchmarks_stay_out(self):
        report = condense(raw_payload(), quick=True)
        assert report["routing"]["groups"] == []
        assert report["routing"]["mispick_rate"] is None

    def test_routing_report_is_valid(self):
        assert validate_report(condense(routing_payload(), quick=True)) == []

    def test_validator_rejects_bad_mode(self):
        report = condense(routing_payload(), quick=True)
        report["routing"]["groups"][0]["rows"][0]["mode"] = "sometimes"
        assert any("mode" in p for p in validate_report(report))

    def test_validator_requires_routing_section(self):
        report = condense(routing_payload(), quick=True)
        del report["routing"]
        assert any("routing" in p for p in validate_report(report))

    def test_table_renders(self):
        from tools.bench_runner import routing_table

        report = condense(routing_payload(), quick=True)
        lines = routing_table(report["routing"])
        assert any("mixed/n=100" in line for line in lines)
        assert any("mispick rate" in line for line in lines)
        empty = routing_table({"groups": []})
        assert any("no routing benchmarks" in line for line in empty)


class TestRoutingGate:
    def test_gate_passes_and_fails(self):
        from tools.bench_runner import _routing_gate

        report = condense(routing_payload(), quick=True)
        assert _routing_gate(report, None) == 0
        assert _routing_gate(report, 0.2) == 0  # 12.5% <= 20%
        assert _routing_gate(report, 0.1) == 1  # 12.5% > 10%
        # No decisions at all: trivially passing.
        assert _routing_gate(condense(raw_payload(), quick=True), 0.1) == 0


def approx_payload(relative_error=0.03):
    """An exact-vs-approx payload like benchmarks/bench_approx.py emits."""
    payload = raw_payload()
    for mode, mean in (("exact", 0.020), ("approx", 0.008)):
        extra = {"approx_group": "dense/n=40", "engine_mode": mode}
        if mode == "approx":
            extra["relative_error"] = relative_error
            extra["epsilon"] = 0.1
            extra["samples"] = 1500
        payload["benchmarks"].append(
            {
                "name": f"test_approx_vs_exact_dense[40-{mode}]",
                "fullname": "benchmarks/bench_approx.py"
                f"::test_approx_vs_exact_dense[40-{mode}]",
                "group": None,
                "stats": {
                    "mean": mean,
                    "stddev": 0.0001,
                    "min": mean,
                    "rounds": 3,
                },
                "extra_info": extra,
            }
        )
    return payload


class TestApproxSection:
    def test_approx_vs_exact_ratio_and_error_passthrough(self):
        report = condense(approx_payload(), quick=True)
        approx = report["approx"]
        [group] = approx["groups"]
        assert group["group"] == "dense/n=40"
        rows = {row["mode"]: row for row in group["rows"]}
        assert rows["exact"]["vs_exact"] is None
        assert abs(rows["approx"]["vs_exact"] - 0.4) < 1e-12
        assert rows["approx"]["relative_error"] == 0.03
        assert rows["approx"]["epsilon"] == 0.1
        assert rows["approx"]["samples"] == 1500
        assert approx["max_relative_error"] == 0.03
        assert approx["within_epsilon"] is True

    def test_error_above_epsilon_flips_the_flag(self):
        approx = condense(approx_payload(relative_error=0.2), quick=True)[
            "approx"
        ]
        assert approx["max_relative_error"] == 0.2
        assert approx["within_epsilon"] is False

    def test_untagged_benchmarks_stay_out(self):
        report = condense(raw_payload(), quick=True)
        assert report["approx"]["groups"] == []
        assert report["approx"]["max_relative_error"] is None
        assert report["approx"]["within_epsilon"] is True  # vacuously

    def test_approx_report_is_valid(self):
        assert validate_report(condense(approx_payload(), quick=True)) == []

    def test_validator_rejects_bad_mode(self):
        report = condense(approx_payload(), quick=True)
        report["approx"]["groups"][0]["rows"][0]["mode"] = "guessed"
        assert any("mode" in p for p in validate_report(report))

    def test_validator_rejects_negative_error(self):
        report = condense(approx_payload(), quick=True)
        report["approx"]["groups"][0]["rows"][1]["relative_error"] = -0.1
        assert any("relative_error" in p for p in validate_report(report))

    def test_validator_requires_approx_section(self):
        report = condense(approx_payload(), quick=True)
        del report["approx"]
        assert any("approx" in p for p in validate_report(report))

    def test_table_renders(self):
        from tools.bench_runner import approx_table

        report = condense(approx_payload(), quick=True)
        lines = approx_table(report["approx"])
        assert any("dense/n=40" in line for line in lines)
        assert any("max relative error" in line for line in lines)
        empty = approx_table({"groups": []})
        assert any("no sampling-tier" in line for line in empty)
