"""Tests for :mod:`repro.cost.stats` — the Structure cache contract leg.

The load-bearing property (ISSUE 7 satellite): the router must never read
stale cardinalities.  ``invalidate_caches()`` drops the statistics,
``with_tuple()`` derives them incrementally, and ``structure_stats``
serves the cached object only for the structure it was built from.
"""

from repro.cost import StructureStats, structure_stats
from repro.cost.router import EngineRouter
from repro.robust.guard import RobustEvaluator
from repro.logic.parser import parse_formula
from repro.structures.builders import graph_structure, path_graph


class TestCaching:
    def test_second_call_reuses_cached_stats(self):
        structure = path_graph(5)
        first = structure_stats(structure)
        assert structure_stats(structure) is first

    def test_eager_parts_match_structure(self):
        structure = path_graph(5)
        stats = structure_stats(structure)
        assert stats.order == 5
        assert stats.relation_card("E") == 8  # 4 undirected edges, both ways
        assert stats.size == structure.size()

    def test_unknown_relation_counts_as_empty(self):
        stats = structure_stats(path_graph(4))
        assert stats.relation_card("Paux__0") == 0
        assert stats.index_fanout("Paux__0") == 0.0

    def test_invalidate_caches_drops_stats(self):
        structure = path_graph(5)
        first = structure_stats(structure)
        structure.invalidate_caches()
        assert structure._stats is None
        rebuilt = structure_stats(structure)
        assert rebuilt is not first
        assert rebuilt.relation_cards == first.relation_cards

    def test_lazy_parts(self):
        stats = structure_stats(path_graph(4))
        degree = stats.degree()
        assert degree.max == 2
        assert degree.histogram == {1: 2, 2: 2}
        assert stats.component_count() == 1
        two_parts = graph_structure([1, 2, 3, 4], [(1, 2), (3, 4)])
        assert structure_stats(two_parts).component_count() == 2

    def test_ball_size_estimate_monotone_and_capped(self):
        stats = structure_stats(path_graph(6))
        sizes = [stats.ball_size_estimate(r) for r in range(0, 8)]
        assert sizes[0] == 1.0
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))
        assert all(size <= stats.order for size in sizes)


class TestCopyOnWriteDerivation:
    def test_with_tuple_derives_incrementally(self):
        structure = path_graph(4)
        base = structure_stats(structure)
        derived = structure.with_tuple("E", (1, 3))
        stats = structure_stats(derived)
        assert isinstance(stats, StructureStats)
        assert stats is not base
        assert stats.relation_card("E") == base.relation_card("E") + 1
        assert stats.size == base.size + 1
        # The parent's stats are untouched.
        assert structure_stats(structure).relation_card("E") == base.relation_card("E")

    def test_with_tuple_removal(self):
        structure = path_graph(4)
        base = structure_stats(structure)
        derived = structure.with_tuple("E", (2, 3), present=False)
        assert structure_stats(derived).relation_card("E") == base.relation_card("E") - 1

    def test_without_parent_stats_derived_builds_fresh(self):
        structure = path_graph(4)
        assert structure._stats is None
        derived = structure.with_tuple("E", (1, 3))
        assert derived._stats is None
        assert structure_stats(derived).relation_card("E") == 7

    def test_lazy_parts_rebuilt_from_derived_adjacency(self):
        structure = graph_structure([1, 2, 3, 4], [(1, 2), (3, 4)])
        base = structure_stats(structure)
        assert base.component_count() == 2
        # Bridge the components; the derived degree/component summaries
        # must come from the derived adjacency, not the parent's.
        bridged = structure.with_tuple("E", (2, 3)).with_tuple("E", (3, 2))
        assert structure_stats(bridged).component_count() == 1


class TestRouterSeesFreshCardinalities:
    """ISSUE 7 regression: route, mutate incrementally, route again —
    the second decision must be priced against the updated statistics."""

    def test_routing_after_incremental_mutation(self):
        structure = path_graph(6)
        router = EngineRouter()
        engine = RobustEvaluator(route="auto", router=router)
        phi = parse_formula("E(x, y)")

        assert engine.count(structure, phi, ["x", "y"]) == 10
        first = engine.last_report.routing
        assert first is not None

        mutated = structure
        for v in range(2, 6):
            mutated = mutated.with_tuple("E", (1, v + 1)).with_tuple(
                "E", (v + 1, 1)
            )
        expected = len(mutated.relation("E"))
        assert engine.count(mutated, phi, ["x", "y"]) == expected
        second = engine.last_report.routing
        assert second is not None

        # The mutated structure's stats reflect the delta exactly...
        assert structure_stats(mutated).relation_card("E") == expected
        # ...and the router priced the second run against them: counting a
        # single positive atom is exact, so foc1's predicted work strictly
        # grows with the relation.
        assert second.predicted["foc1"] > first.predicted["foc1"]

    def test_routing_after_in_place_mutation(self):
        structure = path_graph(6)
        stats = structure_stats(structure)
        assert stats.relation_card("E") == 10
        symbol = next(s for s in structure._relations if s.name == "E")
        structure._relations[symbol] = structure._relations[symbol] | {
            (1, 3),
            (3, 1),
        }
        structure.invalidate_caches()
        assert structure_stats(structure).relation_card("E") == 12


class TestDistinctPerColumn:
    """ISSUE 8 satellite: distinct-per-column comes off the columnar
    per-position indexes, and the ``cost.stats.derived`` fast path never
    serves a parent's counts for a derived structure."""

    def test_counts_match_relation_content(self):
        structure = graph_structure([1, 2, 3, 4], [(1, 2), (1, 3), (1, 4)])
        stats = structure_stats(structure)
        # Symmetric closure: {(1,v), (v,1)} — every vertex appears in both
        # columns, so both positions have 4 distinct values.
        assert stats.distinct_per_column("E") == (4, 4)
        directed = graph_structure([1, 2, 3, 4], [(1, 2), (1, 3), (1, 4)])
        sym = next(s for s in directed._relations if s.name == "E")
        directed._relations[sym] = frozenset({(1, 2), (1, 3), (1, 4)})
        directed.invalidate_caches()
        assert structure_stats(directed).distinct_per_column("E") == (1, 3)

    def test_shares_the_columnar_index(self):
        structure = path_graph(5)
        stats = structure_stats(structure)
        counts = stats.distinct_per_column("E")
        relation = structure.columnar().relation("E")
        assert counts == tuple(
            len(relation.index(p)) for p in range(relation.arity)
        )
        # Memoised per relation on the stats object.
        assert stats.distinct_per_column("E") is counts

    def test_unknown_symbol_is_empty(self):
        stats = structure_stats(path_graph(3))
        assert stats.distinct_per_column("Paux__0") == ()

    def test_derived_stats_rebuild_distinct_counts(self):
        """The regression guard for the derive() fast path: after a
        with_tuple delta the derived stats' distinct counts must reflect
        the derived relations, never the parent's cached tuple."""
        structure = graph_structure([1, 2, 3, 4], [(1, 2)])
        base = structure_stats(structure)
        assert base.distinct_per_column("E") == (2, 2)
        derived = structure.with_tuple("E", (3, 4))
        derived_stats = structure_stats(derived)
        # Derived incrementally (not rebuilt from scratch)...
        assert derived_stats.relation_card("E") == base.relation_card("E") + 1
        # ...but the distinct counts come from the derived structure.
        assert derived_stats.distinct_per_column("E") == (3, 3)
        # Parent's cached counts are untouched.
        assert base.distinct_per_column("E") == (2, 2)

    def test_invalidate_caches_drops_distinct_counts(self):
        structure = path_graph(4)
        stats = structure_stats(structure)
        assert stats.distinct_per_column("E") == (4, 4)
        sym = next(s for s in structure._relations if s.name == "E")
        structure._relations[sym] = frozenset({(1, 2), (2, 1)})
        structure.invalidate_caches()
        assert structure_stats(structure).distinct_per_column("E") == (2, 2)
