"""Seeded differential tests: ``--engine auto`` answers are byte-identical
to the fixed cascade.

Routing is reorder-only — every stage stays in the cascade — so for any
input the auto-routed evaluator must return exactly what the fixed-order
evaluator returns, on every parallel backend and worker count.  Plain
``random.Random(seed)`` so each case is a fixed, individually re-runnable
pytest id (same idiom as tests/parallel/test_differential_parallel.py).
"""

import random

import pytest

from repro.logic.parser import parse_formula, parse_term
from repro.robust.guard import RobustEvaluator
from repro.structures.builders import graph_structure

SEEDS = range(30)

FORMULAS = (
    ("E(x, y)", ["x", "y"]),
    ("exists y. E(x, y)", ["x"]),
    ("E(x, y) & E(y, z)", ["x", "y", "z"]),
)


def _random_graph(rng: random.Random, max_n: int = 12):
    n = rng.randint(2, max_n)
    vertices = list(range(1, n + 1))
    pairs = [(u, v) for u in vertices for v in vertices if u < v]
    edges = [pair for pair in pairs if rng.random() < 0.3]
    return graph_structure(vertices, edges)


def _engines(**kwargs):
    return (
        RobustEvaluator(route="auto", **kwargs),
        RobustEvaluator(route="cascade", **kwargs),
    )


class TestAutoMatchesCascade:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_count_identical(self, seed):
        rng = random.Random(8000 + seed)
        structure = _random_graph(rng)
        text, variables = FORMULAS[seed % len(FORMULAS)]
        phi = parse_formula(text)
        auto, cascade = _engines()
        assert auto.count(structure, phi, variables) == cascade.count(
            structure, phi, variables
        )
        assert auto.last_report.answered_by == cascade.last_report.answered_by

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unary_term_values_identical(self, seed):
        rng = random.Random(8100 + seed)
        structure = _random_graph(rng)
        term = parse_term("#(y). E(x, y)")
        auto, cascade = _engines()
        left = auto.unary_term_values(structure, term, "x")
        right = cascade.unary_term_values(structure, term, "x")
        # Byte-identical: same values AND same dict insertion order.
        assert list(left.items()) == list(right.items())

    @pytest.mark.parametrize("seed", (0, 9, 17, 26))
    def test_model_check_identical(self, seed):
        rng = random.Random(8200 + seed)
        structure = _random_graph(rng)
        phi = parse_formula("forall x. exists y. E(x, y)")
        auto, cascade = _engines()
        assert auto.model_check(structure, phi) == cascade.model_check(
            structure, phi
        )


class TestBackendsAndWorkers:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    @pytest.mark.parametrize("backend", ("thread",))
    @pytest.mark.parametrize("seed", (3, 14, 25))
    def test_thread_backend_parity(self, seed, backend, workers):
        rng = random.Random(8300 + seed)
        structure = _random_graph(rng)
        term = parse_term("#(y). E(x, y)")
        auto, cascade = _engines(workers=workers, parallel_backend=backend)
        left = auto.unary_term_values(structure, term, "x")
        right = cascade.unary_term_values(structure, term, "x")
        assert list(left.items()) == list(right.items())

    @pytest.mark.parametrize("workers", (2, 4))
    def test_process_backend_parity(self, workers):
        # Process pools are expensive to spin up: one seed per worker count.
        rng = random.Random(8400 + workers)
        structure = _random_graph(rng, max_n=8)
        phi = parse_formula("E(x, y)")
        auto, cascade = _engines(workers=workers, parallel_backend="process")
        assert auto.count(structure, phi, ["x", "y"]) == cascade.count(
            structure, phi, ["x", "y"]
        )

    def test_serial_matches_workers(self):
        rng = random.Random(8500)
        structure = _random_graph(rng)
        term = parse_term("#(y). E(x, y)")
        serial, _ = _engines(workers=1)
        threaded, _ = _engines(workers=4)
        left = serial.unary_term_values(structure, term, "x")
        right = threaded.unary_term_values(structure, term, "x")
        assert list(left.items()) == list(right.items())


class TestRoutingReportContract:
    def test_auto_reports_routing_cascade_does_not(self):
        rng = random.Random(8600)
        structure = _random_graph(rng)
        phi = parse_formula("E(x, y)")
        auto, cascade = _engines()
        auto.count(structure, phi, ["x", "y"])
        cascade.count(structure, phi, ["x", "y"])
        assert auto.last_report.routing is not None
        assert cascade.last_report.routing is None
        payload = auto.last_report.to_dict()
        assert payload["routing"]["chosen"] in ("main_algorithm", "foc1", "baseline")

    def test_report_stage_order_is_canonical_even_when_reordered(self):
        rng = random.Random(8601)
        structure = _random_graph(rng)
        phi = parse_formula("E(x, y)")
        auto, _ = _engines()
        auto.count(structure, phi, ["x", "y"])
        names = [stage.stage for stage in auto.last_report.stages]
        canonical = [
            name
            for name in ("main_algorithm", "foc1", "baseline")
            if name in names
        ]
        assert names == canonical
