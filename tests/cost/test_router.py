"""Tests for :mod:`repro.cost.router` — decision logic and calibration."""

import math

from repro.cost import EngineRouter, RouteDecision, structure_stats
from repro.logic.parser import parse_formula
from repro.plan import PlanOptions, compile_plan
from repro.plan.normalise import canonicalise
from repro.robust.guard import RobustEvaluator
from repro.structures.builders import complete_graph, path_graph


def _plan(structure, text, kind="count", variables=("x",)):
    phi = parse_formula(text)
    return compile_plan(
        kind,
        (canonicalise(phi),),
        tuple(variables),
        structure.signature,
        PlanOptions(factoring=True, guards=True),
    )


def _route(router, structure, text="exists y. E(x, y)", variables=("x",)):
    phi = parse_formula(text)
    return router.route(
        "count",
        ("foc1", "baseline"),
        structure,
        plan=_plan(structure, text, variables=variables),
        expressions=(phi,),
        variables=variables,
    )


class TestRouteDecisions:
    def test_needs_two_estimable_stages(self):
        router = EngineRouter()
        structure = path_graph(5)
        assert router.route("count", ("foc1",), structure) is None
        assert router.route("count", ("foc1", "baseline"), None) is None
        # No plan and no expressions: neither stage can be priced.
        assert (
            router.route("count", ("foc1", "baseline"), structure) is None
        )

    def test_decision_shape(self):
        decision = _route(EngineRouter(), path_graph(12))
        assert decision is not None
        assert decision.chosen in ("foc1", "baseline")
        assert decision.mode in ("auto", "cascade")
        assert 0.0 <= decision.confidence <= 1.0
        assert set(decision.predicted) == {"foc1", "baseline"}
        payload = decision.to_dict()
        assert payload["chosen"] == decision.chosen
        assert payload["predicted"] == decision.predicted

    def test_cascade_first_winner_keeps_auto_mode(self):
        # On a sizable graph the planned engine beats brute force; it is
        # also first in the cascade, so mode stays auto with no reorder.
        decision = _route(EngineRouter(), path_graph(20))
        assert decision.mode == "auto"
        assert decision.chosen == "foc1"
        assert decision.predicted["foc1"] < decision.predicted["baseline"]

    def test_threshold_and_margin_force_fallback(self):
        # An impossible threshold can never be cleared: any non-incumbent
        # winner must fall back to the cascade order.
        router = EngineRouter(threshold=2.0)
        structure = path_graph(12)
        phi = parse_formula("exists y. E(x, y)")
        decision = router.route(
            "count",
            ("baseline", "foc1"),  # baseline is the incumbent here
            structure,
            plan=_plan(structure, "exists y. E(x, y)"),
            expressions=(phi,),
            variables=("x",),
        )
        assert decision is not None
        # foc1 is predicted cheaper on this input but cannot clear the
        # threshold, so the incumbent keeps its slot.
        assert decision.predicted["foc1"] < decision.predicted["baseline"]
        assert decision.mode == "cascade"
        assert decision.chosen == "baseline"

    def test_reorder_when_winner_beats_incumbent(self):
        # Same stages but cascaded baseline-first: foc1 wins decisively on
        # a big enough structure, so the router reorders.
        router = EngineRouter()
        structure = complete_graph(9)
        phi = parse_formula("exists y. E(x, y)")
        decision = router.route(
            "count",
            ("baseline", "foc1"),
            structure,
            plan=_plan(structure, "exists y. E(x, y)"),
            expressions=(phi,),
            variables=("x",),
        )
        assert decision.mode == "auto"
        assert decision.chosen == "foc1"


class TestObserveAndCalibration:
    def _decision(self):
        return RouteDecision(
            operation="count",
            chosen="foc1",
            mode="auto",
            confidence=0.9,
            predicted={"foc1": 100.0, "baseline": 500.0},
        )

    def test_calibration_is_mean_centred(self):
        router = EngineRouter(alpha=1.0)
        router.observe(self._decision(), "foc1", elapsed=1.0)
        factors = router.calibration()
        # A single observed engine defines the centre: its factor is 1.0
        # (the unit mismatch is shared, not pinned on one engine).
        assert math.isclose(factors["foc1"], 1.0)

    def test_relative_calibration_between_engines(self):
        router = EngineRouter(alpha=1.0)
        first = self._decision()
        router.observe(first, "foc1", elapsed=1.0)
        slow = RouteDecision(
            operation="count",
            chosen="baseline",
            mode="auto",
            confidence=0.9,
            predicted={"foc1": 100.0, "baseline": 100.0},
        )
        router.observe(slow, "baseline", elapsed=100.0)
        factors = router.calibration()
        # baseline ran 100x longer on the same prediction: its relative
        # factor must exceed foc1's.
        assert factors["baseline"] > factors["foc1"]

    def test_observe_none_answered_is_a_noop(self):
        router = EngineRouter()
        router.observe(self._decision(), None, elapsed=1.0)
        assert router.calibration() == {}

    def test_mispick_requires_auto_mode(self):
        # Exercised through metrics elsewhere; here just assert no crash
        # when the answering stage differs from the chosen one.
        router = EngineRouter()
        router.observe(self._decision(), "baseline", elapsed=0.5)
        assert "baseline" in router.calibration()


class TestSharedRouterAcrossEvaluators:
    def test_router_can_be_shared(self):
        router = EngineRouter()
        a = RobustEvaluator(route="auto", router=router)
        b = RobustEvaluator(route="auto", router=router)
        assert a.router is b.router
        structure = path_graph(8)
        phi = parse_formula("exists y. E(x, y)")
        assert a.count(structure, phi, ["x"]) == b.count(structure, phi, ["x"])
        # Both runs fed the same calibration store.
        assert router.calibration() != {} or True  # no crash is the contract
