"""Tests for :mod:`repro.cost.model` — bounds, lattice, estimator, costs.

The property tests pin the ISSUE 7 soundness obligations: adding tuples
never *decreases* a provable cardinality lower bound (for negation-free
bodies — complements are anti-monotone by design), and estimates over
empty relations are exact zeros, not heuristics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    CardBound,
    CardinalityEstimator,
    CardinalityLattice,
    CostModel,
    structure_stats,
)
from repro.core.evaluator import Foc1Evaluator
from repro.logic.parser import parse_formula
from repro.plan import PlanOptions, compile_plan
from repro.plan.normalise import canonicalise
from repro.structures.builders import graph_structure, path_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure


class TestCardBound:
    def test_exactly(self):
        b = CardBound.exactly(7)
        assert (b.lower, b.upper, b.estimate, b.exact) == (7, 7, 7, True)

    def test_ranged_clamps_estimate_into_interval(self):
        b = CardBound.ranged(2, 10, 99)
        assert b.estimate == 10
        assert CardBound.ranged(2, 10, 0).estimate == 2

    def test_ranged_open_upper(self):
        b = CardBound.ranged(3, None, 1)
        assert b.upper is None
        assert b.estimate == 3
        assert not b.exact

    def test_negative_and_nan_clip_to_zero(self):
        assert CardBound.exactly(-5).lower == 0
        assert CardBound.exactly(float("nan")).lower == 0

    def test_add_and_mul(self):
        a = CardBound.exactly(3)
        b = CardBound.ranged(1, 4, 2)
        s = a.add(b)
        assert (s.lower, s.upper) == (4, 7)
        p = a.mul(b)
        assert (p.lower, p.upper) == (3, 12)

    def test_mul_by_provable_zero_is_exact_zero(self):
        zero = CardBound.exactly(0)
        open_bound = CardBound.ranged(0, None, 50)
        assert zero.mul(open_bound).exact
        assert zero.mul(open_bound).upper == 0

    def test_complement(self):
        b = CardBound.ranged(2, 6, 4)
        c = b.complement(10)
        assert (c.lower, c.upper, c.estimate) == (4, 8, 6)
        # Open upper on the inside means no lower bound on the outside.
        assert CardBound.ranged(2, None, 4).complement(10).lower == 0

    def test_union_max(self):
        a = CardBound.ranged(2, 5, 3)
        b = CardBound.ranged(4, 6, 5)
        u = a.union_max(b)
        assert (u.lower, u.upper) == (4, 11)

    def test_provably_at_most(self):
        assert CardBound.ranged(0, 3, 1).provably_at_most(CardBound.ranged(3, 9, 5))
        assert not CardBound.ranged(0, 4, 1).provably_at_most(
            CardBound.ranged(3, 9, 5)
        )
        assert not CardBound.ranged(0, None, 1).provably_at_most(
            CardBound.ranged(3, 9, 5)
        )

    @given(
        st.floats(0, 1e6),
        st.one_of(st.none(), st.floats(0, 1e6)),
        st.floats(-1e6, 1e7),
    )
    def test_ranged_invariant(self, lower, upper, estimate):
        b = CardBound.ranged(lower, upper, estimate)
        assert b.lower <= b.estimate
        if b.upper is not None:
            assert b.lower <= b.upper
            assert b.estimate <= b.upper


class TestCardinalityLattice:
    def test_record_tightens(self):
        lattice = CardinalityLattice()
        lattice.record("k", CardBound.ranged(0, 10, 5))
        tightened = lattice.record("k", CardBound.ranged(2, None, 6))
        assert (tightened.lower, tightened.upper) == (2, 10)
        assert lattice.bound("k").lower == 2

    def test_compare_provenance(self):
        lattice = CardinalityLattice()
        lattice.record("a", CardBound.ranged(0, 3, 2))
        lattice.record("b", CardBound.ranged(5, 9, 7))
        assert lattice.compare("a", "b") == ("lt", True)
        assert lattice.compare("b", "a") == ("gt", True)
        lattice.record("c", CardBound.ranged(0, None, 4))
        assert lattice.compare("a", "c") == ("lt", False)
        assert lattice.compare("a", "missing") == ("unknown", False)


def _estimator(structure):
    return CardinalityEstimator(structure_stats(structure))


class TestCardinalityEstimator:
    def test_single_positive_atom_is_exact(self):
        structure = path_graph(5)
        bound = _estimator(structure).count_bound(
            ("x", "y"), parse_formula("E(x, y)")
        )
        assert bound.exact
        assert bound.lower == len(structure.relation("E"))

    def test_space_is_always_a_ceiling(self):
        structure = path_graph(4)
        bound = _estimator(structure).count_bound(
            ("x", "y"), parse_formula("E(x, y) | !E(x, y)")
        )
        assert bound.upper is not None
        assert bound.upper <= 16

    def test_empty_relation_estimates_are_exact(self):
        structure = Structure(
            Signature.of(E=2, R=1), [1, 2, 3], {"E": [(1, 2)], "R": []}
        )
        estimator = _estimator(structure)
        alone = estimator.count_bound(("x",), parse_formula("R(x)"))
        assert alone.exact and alone.upper == 0
        # An empty positive conjunct gates the whole conjunction.
        gated = estimator.count_bound(
            ("x", "y"), parse_formula("E(x, y) & R(x)")
        )
        assert gated.exact and gated.upper == 0

    def test_bounds_contain_true_count(self):
        engine = Foc1Evaluator()
        structure = graph_structure(
            [1, 2, 3, 4, 5], [(1, 2), (2, 3), (3, 4), (1, 5), (2, 5)]
        )
        estimator = _estimator(structure)
        for text, variables in (
            ("E(x, y)", ("x", "y")),
            ("E(x, y) & E(y, z)", ("x", "y", "z")),
            ("exists z. E(x, z) & E(z, y)", ("x", "y")),
            ("E(x, y) | E(y, x)", ("x", "y")),
            ("!E(x, y)", ("x", "y")),
        ):
            phi = parse_formula(text)
            truth = engine.count(structure, phi, list(variables))
            bound = estimator.count_bound(variables, phi)
            assert bound.lower <= truth, text
            assert bound.upper is None or truth <= bound.upper, text


NEGATION_FREE = (
    ("E(x, y)", ("x", "y")),
    ("E(x, y) & E(y, z)", ("x", "y", "z")),
    ("exists z. E(x, z) & E(z, y)", ("x", "y")),
    ("E(x, y) | E(y, x)", ("x", "y")),
)


@st.composite
def graph_and_new_edge(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    vertices = list(range(1, n + 1))
    pairs = [(u, v) for u in vertices for v in vertices if u < v]
    edges = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
    )
    structure = graph_structure(vertices, edges)
    u = draw(st.sampled_from(vertices))
    v = draw(st.sampled_from(vertices))
    return structure, (u, v)


class TestEstimatorSoundnessProperties:
    @pytest.mark.parametrize("text,variables", NEGATION_FREE)
    @given(case=graph_and_new_edge())
    @settings(max_examples=30, deadline=None)
    def test_insertion_never_decreases_provable_lower_bound(
        self, case, text, variables
    ):
        structure, tup = case
        phi = parse_formula(text)
        before = _estimator(structure).count_bound(variables, phi)
        grown = structure.with_tuple("E", tup)
        after = _estimator(grown).count_bound(variables, phi)
        assert after.lower >= before.lower

    @given(st.integers(min_value=1, max_value=8), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_empty_relation_count_is_exactly_zero(self, n, arity_vars):
        structure = Structure(
            Signature.of(E=2, R=1), list(range(1, n + 1)), {"E": [], "R": []}
        )
        variables = ("x", "y")
        bound = _estimator(structure).count_bound(
            variables, parse_formula("E(x, y)")
        )
        assert bound.exact
        assert bound.lower == bound.upper == bound.estimate == 0.0


class TestCostModel:
    def test_engine_costs_recorded_in_lattice(self):
        structure = path_graph(6)
        model = CostModel(structure_stats(structure))
        phi = parse_formula("exists y. E(x, y)")
        plan = compile_plan(
            "count",
            (canonicalise(phi),),
            ("x",),
            structure.signature,
            PlanOptions(factoring=True, guards=True),
        )
        model.foc1_cost(plan)
        model.baseline_cost((phi,), ("x",))
        order, provable = model.lattice.compare("cost.foc1", "cost.baseline")
        assert order in ("lt", "gt", "eq", "unknown")
        assert model.lattice.bound("cost.foc1") is not None
        assert model.lattice.bound("cost.baseline") is not None

    def test_baseline_scales_with_enumeration_space(self):
        structure = path_graph(10)
        model = CostModel(structure_stats(structure))
        phi = parse_formula("E(x, y)")
        narrow = model.baseline_cost((phi,), ())
        wide = model.baseline_cost((phi,), ("x", "y"))
        assert wide.estimate > narrow.estimate

    def test_calibration_scales_estimate_not_bounds(self):
        structure = path_graph(6)
        plain = CostModel(structure_stats(structure))
        scaled = CostModel(structure_stats(structure), {"baseline": 10.0})
        phi = parse_formula("E(x, y)")
        a = plain.baseline_cost((phi,), ("x",))
        b = scaled.baseline_cost((phi,), ("x",))
        assert b.estimate > a.estimate
        assert b.bound.lower == a.bound.lower
