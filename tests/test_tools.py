"""Tests for the benchmark summariser tool."""

import json
import pathlib
import subprocess
import sys

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


def make_report(tmp_path):
    data = {
        "benchmarks": [
            {
                "fullname": "benchmarks/bench_covers.py::test_sparse_cover[grid-100]",
                "stats": {"mean": 0.00042},
                "extra_info": {"order": 100, "max_degree": 9},
            },
            {
                "fullname": "benchmarks/bench_covers.py::test_sparse_cover[grid-400]",
                "stats": {"mean": 0.0021},
                "extra_info": {"order": 400, "max_degree": 10},
            },
            {
                "fullname": "benchmarks/bench_splitter.py::test_rounds[64]",
                "stats": {"mean": 1.4},
                "extra_info": {"rounds": 4},
            },
        ]
    }
    target = tmp_path / "bench.json"
    target.write_text(json.dumps(data))
    return target


class TestSummarizer:
    def test_produces_grouped_tables(self, tmp_path):
        from tools.summarize_benchmarks import summarise

        data = json.loads(make_report(tmp_path).read_text())
        text = summarise(data)
        assert "## covers" in text and "## splitter" in text
        assert "max_degree" in text and "rounds" in text
        assert "1.40 s" in text  # second formatting
        assert "us" in text or "ms" in text

    def test_cli_invocation(self, tmp_path):
        report = make_report(tmp_path)
        result = subprocess.run(
            [sys.executable, str(TOOLS / "summarize_benchmarks.py"), str(report)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "## covers" in result.stdout

    def test_missing_file(self):
        result = subprocess.run(
            [sys.executable, str(TOOLS / "summarize_benchmarks.py"), "/none.json"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2
