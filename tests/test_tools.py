"""Tests for the benchmark summariser tool."""

import json
import pathlib
import subprocess
import sys

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


def make_service_section():
    return {
        "schema": "repro-load/1",
        "scenarios": [
            {
                "mix": "uniform",
                "offered": 24,
                "admitted": 24,
                "completed": 24,
                "shed": {},
                "shed_rate": 0.0,
                "killed": 0,
                "errors": 0,
                "resumes": 43,
                "degraded": 0,
                "orphaned_checkpoints": 0,
                "latency_p50_s": 0.0065,
                "latency_p99_s": 0.0241,
                "throughput_rps": 88.0,
            },
            {
                "mix": "hot",
                "offered": 24,
                "admitted": 20,
                "completed": 20,
                "shed": {"queue_full": 3, "concurrency": 1},
                "shed_rate": 4 / 24,
                "killed": 0,
                "errors": 0,
                "resumes": 18,
                "degraded": 22,
                "orphaned_checkpoints": 0,
                "latency_p50_s": None,
                "latency_p99_s": None,
                "throughput_rps": None,
            },
        ],
        "totals": {
            "offered": 48,
            "completed": 44,
            "shed": 4,
            "killed": 0,
            "answers_ok": True,
        },
    }


def make_report(tmp_path):
    data = {
        "benchmarks": [
            {
                "fullname": "benchmarks/bench_covers.py::test_sparse_cover[grid-100]",
                "stats": {"mean": 0.00042},
                "extra_info": {"order": 100, "max_degree": 9},
            },
            {
                "fullname": "benchmarks/bench_covers.py::test_sparse_cover[grid-400]",
                "stats": {"mean": 0.0021},
                "extra_info": {"order": 400, "max_degree": 10},
            },
            {
                "fullname": "benchmarks/bench_splitter.py::test_rounds[64]",
                "stats": {"mean": 1.4},
                "extra_info": {"rounds": 4},
            },
        ]
    }
    target = tmp_path / "bench.json"
    target.write_text(json.dumps(data))
    return target


class TestSummarizer:
    def test_produces_grouped_tables(self, tmp_path):
        from tools.summarize_benchmarks import summarise

        data = json.loads(make_report(tmp_path).read_text())
        text = summarise(data)
        assert "## covers" in text and "## splitter" in text
        assert "max_degree" in text and "rounds" in text
        assert "1.40 s" in text  # second formatting
        assert "us" in text or "ms" in text

    def test_cli_invocation(self, tmp_path):
        report = make_report(tmp_path)
        result = subprocess.run(
            [sys.executable, str(TOOLS / "summarize_benchmarks.py"), str(report)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "## covers" in result.stdout

    def test_missing_file(self):
        result = subprocess.run(
            [sys.executable, str(TOOLS / "summarize_benchmarks.py"), "/none.json"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2


class TestServiceSection:
    """Service (multi-tenant load) rendering in the summariser (ISSUE 10)."""

    def test_renders_one_row_per_mix_with_totals(self, tmp_path):
        from tools.summarize_benchmarks import summarise

        data = json.loads(make_report(tmp_path).read_text())
        data["service"] = make_service_section()
        text = summarise(data)
        assert "## service (multi-tenant load)" in text
        assert "| uniform | 24 | 24 | 0 | 0% | 0 | 43 | 0 |" in text
        assert "| hot | 24 | 20 | 4 | 17% |" in text
        assert "6.50 ms" in text  # p50 formatted via format_seconds
        assert "88 rps" in text
        assert "n/a" in text  # null latencies render as n/a, not crash
        assert "44 completed of 48 offered" in text
        assert "answers_ok=True" in text

    def test_condensed_benchmarks_without_fullname_are_skipped(self, tmp_path):
        # repro-bench reports condense benchmarks to {name, mean_s, ...};
        # the summariser must not KeyError on them.
        from tools.summarize_benchmarks import summarise

        data = {
            "benchmarks": [{"name": "kernel_join", "mean_s": 0.004}],
            "service": make_service_section(),
        }
        text = summarise(data)
        assert "## service (multi-tenant load)" in text
        assert "kernel_join" not in text

    def test_empty_service_section_renders_placeholder(self):
        from tools.summarize_benchmarks import summarise

        text = summarise({"benchmarks": [], "service": {"scenarios": []}})
        assert "(no load scenarios recorded)" in text

    def test_cli_renders_service_from_bench_report(self, tmp_path):
        report = make_report(tmp_path)
        data = json.loads(report.read_text())
        data["service"] = make_service_section()
        report.write_text(json.dumps(data))
        result = subprocess.run(
            [sys.executable, str(TOOLS / "summarize_benchmarks.py"), str(report)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "## service (multi-tenant load)" in result.stdout
        assert "## covers" in result.stdout  # benchmark tables still render

    def test_bench_validator_accepts_the_embedded_load_report(self):
        from tools.bench_runner import condense, validate_report

        report = condense({"benchmarks": []}, quick=True)
        report["service"] = make_service_section()
        assert validate_report(report) == []

    def test_bench_validator_rejects_killed_queries(self):
        from tools.bench_runner import condense, validate_report

        report = condense({"benchmarks": []}, quick=True)
        report["service"] = make_service_section()
        report["service"]["scenarios"][0]["killed"] = 2
        problems = validate_report(report)
        assert any("killed" in problem for problem in problems)


class TestLoadRunnerGate:
    """tools/load_runner.py acceptance gate on synthetic reports."""

    @staticmethod
    def report(**overrides):
        totals = {
            "offered": 72,
            "admitted": 72,
            "completed": 72,
            "shed": 0,
            "killed": 0,
            "errors": 0,
            "mismatches": 0,
            "degraded": 0,
            "resumes": 10,
            "answers_ok": True,
        }
        totals.update(overrides)
        return {
            "schema": "repro-load/1",
            "scenarios": [
                {
                    "mix": "uniform",
                    "offered": 72,
                    "shed_rate": totals["shed"] / 72,
                    "orphaned_checkpoints": overrides.get("orphaned", 0),
                }
            ],
            "totals": totals,
        }

    def test_clean_report_passes(self):
        from tools.load_runner import gate

        assert gate(self.report(), shed_bounds=(0.0, 0.5)) == []

    def test_killed_query_fails_the_gate(self):
        from tools.load_runner import gate

        problems = gate(self.report(killed=1), shed_bounds=(0.0, 0.5))
        assert any("killed" in p for p in problems)

    def test_wrong_answers_fail_the_gate(self):
        from tools.load_runner import gate

        problems = gate(
            self.report(answers_ok=False, mismatches=2),
            shed_bounds=(0.0, 0.5),
        )
        assert problems

    def test_shed_rate_outside_bounds_fails(self):
        from tools.load_runner import gate

        clean = self.report()
        clean["scenarios"][0]["shed_rate"] = 0.9
        problems = gate(clean, shed_bounds=(0.0, 0.5))
        assert any("shed" in p for p in problems)


class TestSeededRngChecker:
    """tools/check_seeded_rng.py — the determinism lint (ISSUE 9)."""

    def test_library_tree_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(TOOLS / "check_seeded_rng.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr

    def test_flags_module_level_draws(self, tmp_path):
        from tools.check_seeded_rng import check_source

        bad = (
            "import random\n"
            "import random as rnd\n"
            "from random import randint\n"
            "x = random.random()\n"
            "random.shuffle([1, 2])\n"
            "y = rnd.choice([1, 2])\n"
            "random.seed(0)\n"
        )
        problems = check_source(bad, "bad.py")
        lines = [line for line, _ in problems]
        assert lines == [3, 4, 5, 6, 7]
        assert all("random.Random" in message for _, message in problems)

    def test_allows_seeded_instances(self):
        from tools.check_seeded_rng import check_source

        good = (
            "import random\n"
            "from random import Random\n"
            "rng = random.Random(7)\n"
            "value = rng.random() + Random(9).randint(0, 3)\n"
            "class Crashy(random.Random):\n"
            "    pass\n"
        )
        assert check_source(good, "good.py") == []

    def test_cli_rejects_a_bad_file(self, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text("import random\nrandom.random()\n")
        result = subprocess.run(
            [sys.executable, str(TOOLS / "check_seeded_rng.py"), str(bad)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 1
        assert "module.py:2" in result.stderr
        assert "unseeded-RNG" in result.stderr
