"""Tests for the benchmark summariser tool."""

import json
import pathlib
import subprocess
import sys

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


def make_report(tmp_path):
    data = {
        "benchmarks": [
            {
                "fullname": "benchmarks/bench_covers.py::test_sparse_cover[grid-100]",
                "stats": {"mean": 0.00042},
                "extra_info": {"order": 100, "max_degree": 9},
            },
            {
                "fullname": "benchmarks/bench_covers.py::test_sparse_cover[grid-400]",
                "stats": {"mean": 0.0021},
                "extra_info": {"order": 400, "max_degree": 10},
            },
            {
                "fullname": "benchmarks/bench_splitter.py::test_rounds[64]",
                "stats": {"mean": 1.4},
                "extra_info": {"rounds": 4},
            },
        ]
    }
    target = tmp_path / "bench.json"
    target.write_text(json.dumps(data))
    return target


class TestSummarizer:
    def test_produces_grouped_tables(self, tmp_path):
        from tools.summarize_benchmarks import summarise

        data = json.loads(make_report(tmp_path).read_text())
        text = summarise(data)
        assert "## covers" in text and "## splitter" in text
        assert "max_degree" in text and "rounds" in text
        assert "1.40 s" in text  # second formatting
        assert "us" in text or "ms" in text

    def test_cli_invocation(self, tmp_path):
        report = make_report(tmp_path)
        result = subprocess.run(
            [sys.executable, str(TOOLS / "summarize_benchmarks.py"), str(report)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "## covers" in result.stdout

    def test_missing_file(self):
        result = subprocess.run(
            [sys.executable, str(TOOLS / "summarize_benchmarks.py"), "/none.json"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2


class TestSeededRngChecker:
    """tools/check_seeded_rng.py — the determinism lint (ISSUE 9)."""

    def test_library_tree_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(TOOLS / "check_seeded_rng.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr

    def test_flags_module_level_draws(self, tmp_path):
        from tools.check_seeded_rng import check_source

        bad = (
            "import random\n"
            "import random as rnd\n"
            "from random import randint\n"
            "x = random.random()\n"
            "random.shuffle([1, 2])\n"
            "y = rnd.choice([1, 2])\n"
            "random.seed(0)\n"
        )
        problems = check_source(bad, "bad.py")
        lines = [line for line, _ in problems]
        assert lines == [3, 4, 5, 6, 7]
        assert all("random.Random" in message for _, message in problems)

    def test_allows_seeded_instances(self):
        from tools.check_seeded_rng import check_source

        good = (
            "import random\n"
            "from random import Random\n"
            "rng = random.Random(7)\n"
            "value = rng.random() + Random(9).randint(0, 3)\n"
            "class Crashy(random.Random):\n"
            "    pass\n"
        )
        assert check_source(good, "good.py") == []

    def test_cli_rejects_a_bad_file(self, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text("import random\nrandom.random()\n")
        result = subprocess.run(
            [sys.executable, str(TOOLS / "check_seeded_rng.py"), str(bad)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 1
        assert "module.py:2" in result.stderr
        assert "unseeded-RNG" in result.stderr
