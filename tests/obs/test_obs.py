"""Tests for the observability layer (repro.obs): tracer, metrics,
environment configuration, and the engine wiring."""

import pytest

from repro.core.baseline import BruteForceEvaluator
from repro.core.evaluator import Foc1Evaluator
from repro.logic.parser import parse_formula
from repro.obs import (
    MetricsRegistry,
    Tracer,
    active_metrics,
    active_tracer,
    collect_metrics,
    configure_from_env,
    hit_rate,
    set_metrics,
    set_tracer,
    span,
    trace_spans,
    traced,
)
from repro.robust.guard import RobustEvaluator
from repro.sparse.covers import sparse_cover
from repro.structures.builders import grid_graph, path_graph


class TestMetricsRegistry:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a.b", 2)
        registry.inc("a.b")
        registry.observe("h", 3)
        registry.observe("h", 5)
        snap = registry.snapshot()
        assert snap["counters"]["a.b"] == 3
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == 4.0
        assert snap["histograms"]["h"]["min"] == 3
        assert snap["histograms"]["h"]["max"] == 5

    def test_memo_hit_rate_aggregates_by_suffix(self):
        registry = MetricsRegistry()
        registry.inc("x.memo.hit", 3)
        registry.inc("y.memo.hit", 1)
        registry.inc("x.memo.miss", 4)
        assert registry.memo_hit_rate() == 0.5
        assert MetricsRegistry().memo_hit_rate() is None

    def test_hit_rate_edge_cases(self):
        assert hit_rate(0, 0) is None
        assert hit_rate(1, 0) == 1.0
        assert hit_rate(0, 4) == 0.0

    def test_zero_traffic_snapshot_survives_every_formatter(self):
        """ISSUE 9: a fresh registry's ratios must reach every consumer as
        None (rendered "n/a"), never as 0.0 or a TypeError."""
        import json

        from repro.plan.cache import PlanCache
        from tools.bench_runner import condense, validate_report

        registry = MetricsRegistry()
        assert registry.memo_hit_rate() is None
        # The snapshot is JSON-safe without any rate key to mis-format.
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        assert "memo_hit_rate" not in snapshot["counters"]
        # A cold plan cache reports no rate rather than "all misses".
        assert PlanCache().stats()["hit_rate"] is None
        # The bench runner folds a zero-traffic payload into a valid
        # report whose totals carry null rates.
        report = condense({"benchmarks": []}, quick=True)
        assert validate_report(report) == []
        assert report["totals"]["memo_hit_rate"] is None
        assert report["totals"]["plan_cache_hit_rate"] is None

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.observe("h", 7)
        a.merge(b)
        assert a.counter("c") == 3
        assert a.histograms["h"].max == 7

    def test_collect_metrics_restores_previous(self):
        assert active_metrics() is None
        with collect_metrics() as outer:
            assert active_metrics() is outer
            with collect_metrics() as inner:
                assert active_metrics() is inner
            assert active_metrics() is outer
        assert active_metrics() is None


class TestTracer:
    def test_spans_nest_and_aggregate(self):
        with trace_spans() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        summary = tracer.summary()
        assert summary["outer"]["calls"] == 1
        assert summary["inner"]["calls"] == 2
        inner_spans = [s for s in tracer.spans if s.name == "inner"]
        assert all(s.parent == "outer" and s.depth == 1 for s in inner_spans)
        assert tracer.report()  # non-empty, slowest-first lines

    def test_span_log_is_bounded(self):
        with trace_spans(Tracer(max_spans=3)) as tracer:
            for _ in range(5):
                with span("x"):
                    pass
        assert len(tracer.spans) == 3
        assert tracer.dropped == 2
        assert tracer.summary()["x"]["calls"] == 5

    def test_traced_decorator_is_noop_when_off(self):
        calls = []

        @traced("t.f")
        def f(value):
            calls.append(value)
            return value * 2

        assert active_tracer() is None
        assert f(2) == 4
        with trace_spans() as tracer:
            assert f(3) == 6
        assert tracer.summary()["t.f"]["calls"] == 1
        assert calls == [2, 3]


class TestConfigureFromEnv:
    @pytest.mark.parametrize(
        "value, want_trace, want_metrics",
        [
            ("1", True, True),
            ("true", True, True),
            ("both", True, True),
            ("trace", True, False),
            ("spans", True, False),
            ("metrics", False, True),
            ("counters", False, True),
            ("0", False, False),
            ("", False, False),
            ("nonsense", False, False),
        ],
    )
    def test_values(self, value, want_trace, want_metrics):
        tracer, registry = configure_from_env({"REPRO_TRACE": value})
        try:
            assert (tracer is not None) == want_trace
            assert (registry is not None) == want_metrics
        finally:
            set_tracer(None)
            set_metrics(None)

    def test_does_not_clobber_installed_instruments(self):
        mine = MetricsRegistry()
        previous = set_metrics(mine)
        try:
            _, registry = configure_from_env({"REPRO_TRACE": "1"})
            assert registry is None  # already installed: left alone
            assert active_metrics() is mine
        finally:
            set_metrics(previous)
            set_tracer(None)


class TestEngineWiring:
    def test_foc1_engine_records_memos_and_spans(self):
        structure = path_graph(8)
        phi = parse_formula("exists y. E(x, y) & E(y, z)")
        with trace_spans() as tracer, collect_metrics() as metrics:
            Foc1Evaluator().count(structure, phi, ["x", "z"])
        assert tracer.summary()["foc1.count"]["calls"] == 1
        counters = metrics.counters
        assert counters.get("evaluator.holds.memo.miss", 0) > 0
        assert metrics.memo_hit_rate() is not None

    def test_cover_construction_records_cluster_sizes(self):
        with collect_metrics() as metrics:
            sparse_cover(grid_graph(4, 4), 1)
        assert metrics.counter("cover.built") == 1
        assert metrics.histograms["cover.cluster_size"].count > 0

    def test_baseline_is_traced(self):
        structure = path_graph(4)
        phi = parse_formula("E(x, y)")
        with trace_spans() as tracer:
            BruteForceEvaluator().count(structure, phi, ["x", "y"])
        assert tracer.summary()["baseline.count"]["calls"] == 1

    def test_robust_cascade_attributes_metrics_to_stages(self):
        structure = path_graph(6)
        phi = parse_formula("forall x. exists y. E(x, y)")
        robust = RobustEvaluator()
        with collect_metrics() as metrics:
            assert robust.model_check(structure, phi) is True
        report = robust.last_report
        assert metrics.counter("robust.stage.foc1.ok") == 1
        assert metrics.counter("robust.stage.baseline.skipped") == 1
        foc1_stage = report.stage("foc1")
        assert foc1_stage.metrics  # counter deltas recorded
        assert all(v > 0 for v in foc1_stage.metrics.values())

    def test_disabled_instruments_change_nothing(self):
        structure = path_graph(6)
        phi = parse_formula("E(x, y) & E(y, z)")
        plain = Foc1Evaluator().count(structure, phi, ["x", "y", "z"])
        with trace_spans(), collect_metrics():
            instrumented = Foc1Evaluator().count(structure, phi, ["x", "y", "z"])
        assert plain == instrumented


class TestMetricsThreadSafety:
    def test_concurrent_increments_lose_no_updates(self):
        """Regression: inc() was a bare ``dict[key] += delta`` — a
        read-modify-write that drops updates under contention."""
        import threading

        registry = MetricsRegistry()
        threads_n, per_thread = 8, 2_000
        barrier = threading.Barrier(threads_n)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                registry.inc("contended")
                registry.observe("lat", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert registry.counter("contended") == threads_n * per_thread
        assert registry.histograms["lat"].count == threads_n * per_thread

    def test_disabled_metrics_still_noop(self):
        """The lock lives inside the registry: with no registry active the
        module-level tick/observe helpers stay a cheap None check."""
        previous = set_metrics(None)
        try:
            assert active_metrics() is None
            # module-level helpers must not raise with nothing active
            from repro.obs.metrics import tick

            tick("anything")
        finally:
            set_metrics(previous)

    def test_thread_local_override_shadows_global(self):
        from repro.obs.metrics import set_thread_metrics, thread_metrics

        shared = MetricsRegistry()
        previous = set_metrics(shared)
        try:
            local = MetricsRegistry()
            token = set_thread_metrics(local)
            try:
                assert active_metrics() is local
                active_metrics().inc("k")
            finally:
                set_thread_metrics(token)
            assert active_metrics() is shared
            assert local.counter("k") == 1
            assert shared.counter("k") == 0
            with thread_metrics(MetricsRegistry()) as scoped:
                assert active_metrics() is scoped
            assert active_metrics() is shared
        finally:
            set_metrics(previous)

    def test_merge_is_safe_against_concurrent_writers(self):
        import threading

        parent = MetricsRegistry()
        child = MetricsRegistry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                child.inc("busy")

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(50):
                parent.merge(child)
        finally:
            stop.set()
            t.join()
        # No exception and a sane (monotone) folded value.
        assert parent.counter("busy") >= 0
