"""Tests for sparsity measures."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.sparse.measures import (
    ball_growth,
    degeneracy,
    degree_statistics,
    sparsity_report,
)
from repro.structures.builders import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)

from ..conftest import small_graphs


class TestDegeneracy:
    def test_known_values(self):
        assert degeneracy(path_graph(10)) == 1
        assert degeneracy(cycle_graph(10)) == 2
        assert degeneracy(complete_graph(7)) == 6
        assert degeneracy(grid_graph(5, 5)) == 2

    @given(small_graphs(min_vertices=2, max_vertices=7))
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_core_number(self, structure):
        g = nx.Graph()
        g.add_nodes_from(structure.universe_order)
        for a, ns in structure.adjacency().items():
            for b in ns:
                g.add_edge(a, b)
        expected = max(nx.core_number(g).values()) if g.number_of_nodes() else 0
        assert degeneracy(structure) == expected


class TestDegreeStatistics:
    def test_path(self):
        stats = degree_statistics(path_graph(5))
        assert stats["min_degree"] == 1
        assert stats["max_degree"] == 2
        assert stats["avg_degree"] == pytest.approx(8 / 5)


class TestBallGrowth:
    def test_path_growth_is_linear(self):
        growth = ball_growth(path_graph(50), 4)
        # interior vertices have |N_i| = 2i + 1
        assert growth[0] == 1
        assert growth[4] <= 9

    def test_clique_saturates_immediately(self):
        growth = ball_growth(complete_graph(30), 2)
        assert growth[1] == 30
        assert growth[2] == 30

    def test_sample_restriction(self):
        growth = ball_growth(path_graph(50), 2, sample=[25])
        assert growth[2] == 5


class TestReport:
    def test_report_fields(self):
        report = sparsity_report(grid_graph(6, 6), radius=2)
        assert report["order"] == 36
        assert report["degeneracy"] == 2
        assert 0 < report["ball_saturation"] <= 1
        assert set(report["ball_growth"]) == {0, 1, 2}

    def test_saturation_separates_classes(self):
        sparse = sparsity_report(grid_graph(8, 8), radius=3)["ball_saturation"]
        dense = sparsity_report(complete_graph(64), radius=3)["ball_saturation"]
        assert sparse < 0.5 < dense
