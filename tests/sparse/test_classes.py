"""Tests for the structure-family generators."""

import pytest

from repro.errors import UniverseError
from repro.sparse.classes import (
    DENSE_FAMILIES,
    SPARSE_FAMILIES,
    bounded_degree_graph,
    caterpillar,
    coloured_digraph,
    dense_random_graph,
    long_subdivided_clique,
    nearly_square_grid,
    random_tree,
    sparse_random_graph,
    triangulated_grid,
)
from repro.structures.gaifman import is_connected


class TestGenerators:
    def test_random_tree_is_a_tree(self):
        t = random_tree(50, seed=3)
        assert is_connected(t)
        # a tree on n vertices has n-1 undirected edges = 2(n-1) pairs
        assert len(t.relation("E")) == 2 * 49

    def test_random_tree_deterministic(self):
        assert random_tree(30, seed=7) == random_tree(30, seed=7)
        assert random_tree(30, seed=7) != random_tree(30, seed=8)

    def test_bounded_degree_cap_respected(self):
        g = bounded_degree_graph(60, max_degree=3, seed=1)
        assert max(len(ns) for ns in g.adjacency().values()) <= 3

    def test_sparse_random_graph_edge_budget(self):
        g = sparse_random_graph(100, average_degree=2.0, seed=0)
        assert len(g.relation("E")) == 2 * 100  # m = avg*n/2 = 100 edges

    def test_dense_random_graph_probability_bounds(self):
        g = dense_random_graph(20, probability=1.0, seed=0)
        assert len(g.relation("E")) == 20 * 19
        empty = dense_random_graph(20, probability=0.0, seed=0)
        assert len(empty.relation("E")) == 0
        with pytest.raises(UniverseError):
            dense_random_graph(5, probability=1.5)

    def test_triangulated_grid_planar_density(self):
        g = triangulated_grid(4, 4)
        # grid edges 2*r*c - r - c = 24, plus 9 diagonals
        assert len(g.relation("E")) == 2 * (24 + 9)

    def test_caterpillar_is_tree(self):
        c = caterpillar(10, legs_per_vertex=2, seed=0)
        assert is_connected(c)
        assert len(c.relation("E")) == 2 * (c.order() - 1)

    def test_subdivided_clique(self):
        g = long_subdivided_clique(4, 3)
        assert is_connected(g)
        # 4 + 6 edges * 3 middles
        assert g.order() == 4 + 6 * 3
        assert max(len(ns) for ns in g.adjacency().values()) == 3

    def test_coloured_digraph_signature(self):
        g = coloured_digraph(30, 2.0, seed=2)
        assert set(g.signature.names) == {"B", "E", "G", "R"}

    def test_nearly_square_grid_size(self):
        g = nearly_square_grid(100)
        assert 100 <= g.order() <= 110


class TestFamilyRegistries:
    @pytest.mark.parametrize("name", sorted(SPARSE_FAMILIES))
    def test_sparse_families_generate(self, name):
        structure = SPARSE_FAMILIES[name](30, 0)
        assert structure.order() >= 25

    @pytest.mark.parametrize("name", sorted(DENSE_FAMILIES))
    def test_dense_families_generate(self, name):
        structure = DENSE_FAMILIES[name](15, 0)
        assert structure.order() == 15

    def test_sparse_families_really_sparse(self):
        from repro.sparse.measures import degeneracy

        for name, make in SPARSE_FAMILIES.items():
            g = make(60, 0)
            assert degeneracy(g) <= 5, name

    def test_dense_controls_really_dense(self):
        from repro.sparse.measures import degeneracy

        clique = DENSE_FAMILIES["clique"](30, 0)
        assert degeneracy(clique) == 29
