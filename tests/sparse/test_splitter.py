"""Tests for the (rho, r)-splitter game (Section 8)."""

import pytest
from hypothesis import given, settings

from repro.sparse.splitter import (
    SplitterGameError,
    connector_first,
    connector_max_ball,
    play_splitter_game,
    rounds_needed,
    splitter_ball_centre,
    splitter_max_degree,
    splitter_take_connector,
)
from repro.structures.builders import (
    balanced_tree,
    complete_graph,
    graph_structure,
    grid_graph,
    path_graph,
    star_graph,
)

from ..conftest import small_graphs


class TestGameMechanics:
    def test_single_vertex_immediate_win(self):
        g = graph_structure([1], [])
        result = play_splitter_game(g, radius=2, rounds_limit=1)
        assert result.splitter_won and result.rounds_played == 1

    def test_isolated_vertices_one_round(self):
        g = graph_structure([1, 2, 3], [])
        # radius 0: the ball is just the connector vertex
        result = play_splitter_game(g, radius=0, rounds_limit=1)
        assert result.splitter_won

    def test_history_and_sizes_recorded(self):
        result = play_splitter_game(path_graph(8), radius=1, rounds_limit=10)
        assert result.splitter_won
        assert len(result.history) == result.rounds_played
        assert result.graph_sizes[0] == 8
        # the game graph shrinks strictly
        assert all(
            a > b for a, b in zip(result.graph_sizes, result.graph_sizes[1:])
        )

    def test_connector_win_on_limit(self):
        k = complete_graph(10)
        result = play_splitter_game(k, radius=1, rounds_limit=3)
        assert not result.splitter_won
        assert result.rounds_played == 3

    def test_invalid_parameters(self):
        g = path_graph(3)
        with pytest.raises(SplitterGameError):
            play_splitter_game(g, radius=-1, rounds_limit=2)
        with pytest.raises(SplitterGameError):
            play_splitter_game(g, radius=1, rounds_limit=0)

    @given(small_graphs(min_vertices=1, max_vertices=7))
    @settings(max_examples=30, deadline=None)
    def test_splitter_always_wins_eventually(self, structure):
        """On finite graphs the ball shrinks every round, so any sound
        strategy wins within |A| rounds."""
        rounds = rounds_needed(structure, radius=2)
        assert rounds <= structure.order()


class TestStrategiesAndClasses:
    def test_cliques_need_n_rounds(self):
        """On K_n every 1-ball is everything: Splitter removes one vertex per
        round — the signature of a somewhere-dense class."""
        for n in (5, 10, 15):
            assert rounds_needed(complete_graph(n), radius=1) == n

    def test_paths_need_few_rounds(self):
        long_path = path_graph(200)
        assert rounds_needed(long_path, radius=2) <= 6

    def test_grids_need_few_rounds(self):
        assert rounds_needed(grid_graph(10, 10), radius=2) <= 8

    def test_trees_bounded_rounds(self):
        tree = balanced_tree(2, 6)
        assert rounds_needed(tree, radius=1) <= 6

    def test_star_two_rounds(self):
        # Splitter removes the centre, then each leaf ball is a singleton.
        assert rounds_needed(star_graph(50), radius=1) <= 2

    def test_round_monotonicity_across_density(self):
        sparse_rounds = rounds_needed(grid_graph(6, 6), radius=1)
        dense_rounds = rounds_needed(complete_graph(36), radius=1)
        assert sparse_rounds < dense_rounds

    def test_alternative_strategies_also_win(self):
        g = grid_graph(5, 5)
        for strategy in (
            splitter_take_connector(),
            splitter_max_degree(),
            splitter_ball_centre(),
        ):
            result = play_splitter_game(
                g, radius=1, rounds_limit=30, splitter=strategy
            )
            assert result.splitter_won

    def test_connector_strategies_legal(self):
        g = grid_graph(4, 4)
        for connector in (connector_first(), connector_max_ball(2)):
            result = play_splitter_game(
                g, radius=2, rounds_limit=20, connector=connector
            )
            assert result.splitter_won

    def test_bad_splitter_strategy_caught(self):
        def cheating(adjacency, vertices, connector_vertex, ball_vertices):
            for v in vertices:
                if v not in ball_vertices:
                    return v
            return connector_vertex

        g = graph_structure([1, 2, 3, 4], [(1, 2)])
        with pytest.raises(SplitterGameError):
            play_splitter_game(g, radius=0, rounds_limit=5, splitter=cheating)
