"""Tests for neighbourhood covers (Theorem 8.1's object)."""

import pytest
from hypothesis import given, settings

from repro.sparse.covers import (
    CoverError,
    cover_statistics,
    sparse_cover,
    trivial_cover,
)
from repro.structures.builders import (
    complete_graph,
    graph_structure,
    grid_graph,
    path_graph,
)
from repro.structures.gaifman import ball, distance

from ..conftest import small_graphs


class TestTrivialCover:
    def test_cover_property(self, path5):
        cover = trivial_cover(path5, 1)
        cover.verify(check_radius=1)
        for a in path5.universe_order:
            assert ball(path5, [a], 1) <= cover.cluster_of(a)

    def test_radius_zero(self, path5):
        cover = trivial_cover(path5, 0)
        cover.verify(check_radius=0)
        assert all(len(cover.cluster_of(a)) == 1 for a in path5.universe_order)

    def test_negative_radius_rejected(self, path5):
        with pytest.raises(CoverError):
            trivial_cover(path5, -1)


class TestSparseCover:
    @given(small_graphs(min_vertices=1, max_vertices=7))
    @settings(max_examples=40, deadline=None)
    def test_cover_property_and_radius(self, structure):
        """The central invariant: an (r, 2r)-neighbourhood cover."""
        radius = 2
        cover = sparse_cover(structure, radius)
        cover.verify(check_radius=2 * radius)

    def test_centres_are_scattered(self):
        g = grid_graph(8, 8)
        cover = sparse_cover(g, 2)
        centres = cover.centres
        for i, a in enumerate(centres):
            for b in centres[i + 1 :]:
                assert distance(g, a, b) > 2

    def test_every_element_within_r_of_its_centre(self):
        g = grid_graph(6, 6)
        radius = 2
        cover = sparse_cover(g, radius)
        for a in g.universe_order:
            centre = cover.centres[cover.cluster_index_of(a)]
            assert distance(g, a, centre) <= radius

    def test_members_partition(self):
        g = grid_graph(5, 5)
        cover = sparse_cover(g, 1)
        seen = []
        for index in range(len(cover.clusters)):
            seen.extend(cover.members_with_cluster(index))
        assert sorted(seen, key=repr) == sorted(g.universe_order, key=repr)

    def test_disconnected_graph(self):
        g = graph_structure([1, 2, 3, 4], [(1, 2)])
        cover = sparse_cover(g, 2)
        cover.verify()

    def test_sparser_than_trivial_on_grid(self):
        g = grid_graph(9, 9)
        sparse_stats = cover_statistics(sparse_cover(g, 2))
        trivial_stats = cover_statistics(trivial_cover(g, 2))
        assert sparse_stats["clusters"] < trivial_stats["clusters"]
        assert sparse_stats["max_degree"] <= trivial_stats["max_degree"]

    def test_grid_cover_degree_small(self):
        g = grid_graph(12, 12)
        cover = sparse_cover(g, 2)
        # packing argument: few 2-scattered centres within distance 4
        assert cover.max_degree() <= 12

    def test_clique_cover_is_one_big_cluster(self):
        cover = sparse_cover(complete_graph(20), 1)
        assert len(cover.clusters) == 1
        assert cover_statistics(cover)["largest_cluster"] == 20


class TestCoverQueries:
    def test_covers_tuple(self):
        p = path_graph(9)
        cover = sparse_cover(p, 2)
        index = cover.cluster_index_of(5)
        assert cover.covers_tuple(index, [5], 2)

    def test_clusters_s_covering(self):
        p = path_graph(9)
        cover = sparse_cover(p, 2)
        hits = cover.clusters_s_covering([5], 1)
        assert cover.cluster_index_of(5) in hits or hits

    def test_degree_accessors(self):
        p = path_graph(9)
        cover = sparse_cover(p, 1)
        assert cover.max_degree() >= 1
        assert cover.average_degree() >= 1.0
        assert cover.degree_of(1) >= 1

    def test_verify_catches_broken_cover(self, path5):
        cover = sparse_cover(path5, 1)
        # sabotage: shrink a cluster below the required ball
        broken = type(cover)(
            structure=cover.structure,
            radius=cover.radius,
            clusters=tuple(frozenset([next(iter(c))]) for c in cover.clusters),
            assignment=cover.assignment,
            centres=cover.centres,
        )
        with pytest.raises(CoverError):
            broken.verify()
