"""Degenerate-input regression tests for the cover constructions.

The cover machinery must produce *valid* covers (every element assigned,
``N_r(a) ⊆ X(a)``, clusters connected) on the boundary cases where the
centre-based construction has historically been fragile: radius 0,
isolated vertices, self-loops, fully disconnected graphs, single-element
universes.  Additionally, ``members_with_cluster`` must stay linear over a
full sweep — on degenerate covers (one singleton cluster per element) a
per-call universe scan turns every caller quadratic.
"""

import pytest

from repro.sparse.covers import sparse_cover, trivial_cover
from repro.structures.builders import graph_structure, path_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure


def isolated_vertices(n: int) -> Structure:
    return graph_structure(range(n), [])


def with_self_loop() -> Structure:
    return graph_structure([0, 1, 2], [(0, 0), (1, 2)])


class TestDegenerateInputs:
    @pytest.mark.parametrize("radius", (0, 1, 2))
    @pytest.mark.parametrize("build", (trivial_cover, sparse_cover))
    def test_isolated_vertices(self, build, radius):
        cover = build(isolated_vertices(5), radius)
        cover.verify(check_radius=2 * max(radius, 0))
        # Each isolated vertex is its own singleton cluster.
        assert all(len(c) == 1 for c in cover.clusters)
        assert cover.max_degree() == 1

    @pytest.mark.parametrize("build", (trivial_cover, sparse_cover))
    def test_single_element_universe(self, build):
        structure = graph_structure([42], [])
        cover = build(structure, 3)
        cover.verify()
        assert cover.clusters == (frozenset([42]),)
        assert cover.cluster_of(42) == frozenset([42])
        assert cover.centres == (42,)

    @pytest.mark.parametrize("build", (trivial_cover, sparse_cover))
    def test_radius_zero_gives_singletons(self, build):
        cover = build(path_graph(6), 0)
        cover.verify(check_radius=0)
        assert all(len(c) == 1 for c in cover.clusters)
        assert len(cover.clusters) == 6

    @pytest.mark.parametrize("build", (trivial_cover, sparse_cover))
    def test_self_loops(self, build):
        cover = build(with_self_loop(), 1)
        cover.verify()
        # The self-loop contributes no Gaifman edge: 0 stays isolated.
        assert cover.cluster_of(0) == frozenset([0])

    @pytest.mark.parametrize("build", (trivial_cover, sparse_cover))
    def test_disconnected_components(self, build):
        structure = graph_structure(range(6), [(0, 1), (2, 3)])
        cover = build(structure, 2)
        cover.verify()
        # Clusters never straddle components (connectivity requirement).
        for cluster in cover.clusters:
            assert cluster <= {0, 1} or cluster <= {2, 3} or len(cluster) == 1

    def test_no_relations_at_all(self):
        structure = Structure(Signature.of(), [1, 2, 3])
        for radius in (0, 1, 5):
            cover = sparse_cover(structure, radius)
            cover.verify()
            assert len(cover.clusters) == 3

    def test_statistics_on_degenerate_covers(self):
        cover = sparse_cover(isolated_vertices(4), 1)
        assert cover.max_degree() == 1
        assert cover.average_degree() == 1.0
        assert cover.max_cluster_radius() == 0


class TestMembersSweepIsLinear:
    def test_members_maps_are_grouped_once(self):
        """members_with_cluster over all clusters visits the universe once,
        not once per cluster (the quadratic degenerate-cover regression)."""
        structure = isolated_vertices(64)
        cover = sparse_cover(structure, 1)
        assert len(cover.clusters) == 64
        seen = []
        for index in range(len(cover.clusters)):
            seen.extend(cover.members_with_cluster(index))
        # Partition: every element exactly once across all clusters.
        assert sorted(seen) == sorted(structure.universe_order)
        # And the grouped map is cached on the cover.
        assert cover._members_by_cluster is cover._members_by_cluster

    def test_members_of_unknown_cluster_is_empty(self):
        cover = sparse_cover(path_graph(4), 1)
        assert cover.members_with_cluster(9999) == ()


class TestEmptyStructureStatistics:
    def test_average_degree_of_order_zero_structure_is_zero(self):
        """Regression: average_degree divided by the order unconditionally,
        so a cover around an order-0 structure raised ZeroDivisionError.

        Structure itself rejects empty universes, but covers arrive from
        other front ends too (database-backed adapters, mocks in callers'
        tests), so the statistic has to be total: NeighbourhoodCover is a
        plain frozen dataclass and makes no non-emptiness promise.
        """
        from repro.sparse.covers import NeighbourhoodCover

        class OrderZero:
            universe_order = ()

            def order(self):
                return 0

        cover = NeighbourhoodCover(
            structure=OrderZero(),
            radius=1,
            clusters=(),
            assignment={},
            centres=(),
        )
        assert cover.average_degree() == 0.0
        assert cover.max_degree() == 0
