"""Tests for structure I/O and the command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.io import (
    FormatError,
    load_structure,
    parse_edge_list,
    save_structure,
    structure_from_json,
    structure_to_json,
)
from repro.structures.builders import graph_structure, path_graph


class TestJsonRoundTrip:
    def test_round_trip(self, tmp_path):
        structure = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
        target = tmp_path / "g.json"
        save_structure(structure, target)
        assert load_structure(target) == structure

    def test_round_trip_with_colours(self, tmp_path):
        from repro.structures.builders import coloured_graph_structure

        structure = coloured_graph_structure(
            ["a", "b"], [("a", "b")], red=["a"], blue=["b"]
        )
        target = tmp_path / "g.json"
        save_structure(structure, target)
        assert load_structure(target) == structure

    def test_missing_keys_rejected(self):
        with pytest.raises(FormatError):
            structure_from_json({"universe": [1]})

    def test_bad_signature_rejected(self):
        with pytest.raises(FormatError):
            structure_from_json(
                {"signature": {"E": "two"}, "universe": [1], "relations": {}}
            )

    def test_invalid_json_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(FormatError):
            load_structure(bad)


class TestEdgeLists:
    def test_basic_graph(self):
        structure = parse_edge_list("1 2\n2 3\n# comment\n4\n")
        assert structure.order() == 4
        assert structure.has_tuple("E", (1, 2)) and structure.has_tuple("E", (2, 1))
        assert structure.has_tuple("E", (3, 2))

    def test_string_vertices(self):
        structure = parse_edge_list("ada bob\nbob cyd\n")
        assert "ada" in structure.universe

    def test_malformed_line_rejected(self):
        with pytest.raises(FormatError):
            parse_edge_list("1 2 3\n")

    def test_empty_rejected(self):
        with pytest.raises(FormatError):
            parse_edge_list("# nothing\n")


def run_cli(*args, expect: int = 0) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == expect, result.stderr
    return result.stdout


class TestCli:
    @pytest.fixture
    def graph_file(self, tmp_path):
        target = tmp_path / "graph.txt"
        target.write_text("1 2\n2 3\n3 4\n4 1\n")
        return str(target)

    def test_check(self, graph_file):
        out = run_cli("check", graph_file, "forall x. @eq(#(y). E(x, y), 2)")
        assert out.strip() == "True"

    def test_count(self, graph_file):
        out = run_cli(
            "count", graph_file, "E(x, y) & E(y, z)", "--vars", "x", "y", "z"
        )
        assert out.strip() == "16"

    def test_term(self, graph_file):
        out = run_cli("term", graph_file, "#(x, y). E(x, y)")
        assert out.strip() == "8"

    def test_unary(self, graph_file):
        out = run_cli("unary", graph_file, "#(y). E(x, y)", "--var", "x")
        lines = dict(line.split("\t") for line in out.strip().splitlines())
        assert lines == {"1": "2", "2": "2", "3": "2", "4": "2"}

    def test_info(self, graph_file):
        out = run_cli("info", graph_file)
        report = json.loads(out)
        assert report["order"] == 4
        assert report["degeneracy"] == 2

    def test_formula_analysis(self):
        out = run_cli("formula", "exists x. @even(#(y). E(x, y))")
        assert "is_foc1: True" in out

    def test_fragment_violation_reported(self, graph_file):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "check",
                graph_file,
                "exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))",
            ],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 2
        assert "FOC1" in result.stderr

    def test_fragment_check_can_be_disabled(self, graph_file):
        out = run_cli(
            "check",
            graph_file,
            "exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))",
            "--no-fragment-check",
        )
        assert out.strip() == "True"

    def test_parse_error_exit_code(self, graph_file):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "check", graph_file, "E(x,"],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 2

    def test_missing_file(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "info", "/nonexistent/file.txt"],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 2
