"""Tests for structure I/O and the command-line interface."""

import json
import os
import subprocess
import sys

import pytest

from repro.io import (
    FormatError,
    load_structure,
    parse_edge_list,
    save_structure,
    structure_from_json,
)
from repro.structures.builders import graph_structure


class TestJsonRoundTrip:
    def test_round_trip(self, tmp_path):
        structure = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
        target = tmp_path / "g.json"
        save_structure(structure, target)
        assert load_structure(target) == structure

    def test_round_trip_with_colours(self, tmp_path):
        from repro.structures.builders import coloured_graph_structure

        structure = coloured_graph_structure(
            ["a", "b"], [("a", "b")], red=["a"], blue=["b"]
        )
        target = tmp_path / "g.json"
        save_structure(structure, target)
        assert load_structure(target) == structure

    def test_missing_keys_rejected(self):
        with pytest.raises(FormatError):
            structure_from_json({"universe": [1]})

    def test_bad_signature_rejected(self):
        with pytest.raises(FormatError):
            structure_from_json(
                {"signature": {"E": "two"}, "universe": [1], "relations": {}}
            )

    def test_invalid_json_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(FormatError):
            load_structure(bad)


class TestCorruptJson:
    """Loader hardening: corrupt documents fail with a position hint."""

    @staticmethod
    def doc(universe, relations):
        return {"signature": {"E": 2}, "universe": universe, "relations": relations}

    def test_duplicate_universe_element(self):
        with pytest.raises(FormatError, match=r"universe\[2\]: duplicate element 1"):
            structure_from_json(self.doc([1, 2, 1], {"E": []}))

    def test_non_scalar_universe_element(self):
        with pytest.raises(FormatError, match=r"universe\[1\].*JSON scalars"):
            structure_from_json(self.doc([1, [2]], {"E": []}))

    def test_universe_not_a_list(self):
        with pytest.raises(FormatError, match="'universe'"):
            structure_from_json(self.doc("abc", {"E": []}))

    def test_unknown_element_in_tuple(self):
        with pytest.raises(
            FormatError, match=r"relations\['E'\]\[1\]: entry 1 is 9"
        ):
            structure_from_json(self.doc([1, 2], {"E": [[1, 2], [2, 9]]}))

    def test_wrong_arity_tuple(self):
        with pytest.raises(FormatError, match=r"relations\['E'\]\[0\].*arity 2"):
            structure_from_json(self.doc([1, 2], {"E": [[1, 2, 1]]}))

    def test_tuple_not_an_array(self):
        with pytest.raises(FormatError, match=r"relations\['E'\]\[0\]"):
            structure_from_json(self.doc([1, 2], {"E": ["12"]}))

    def test_undeclared_relation(self):
        with pytest.raises(FormatError, match=r"relations\['F'\]"):
            structure_from_json(self.doc([1, 2], {"F": [[1, 2]]}))

    def test_relations_not_a_dict(self):
        with pytest.raises(FormatError, match="'relations'"):
            structure_from_json(self.doc([1, 2], [[1, 2]]))

    def test_edge_list_line_number_in_error(self):
        with pytest.raises(FormatError, match="line 3"):
            parse_edge_list("1 2\n2 3\n3 4 5\n")


class TestEdgeLists:
    def test_basic_graph(self):
        structure = parse_edge_list("1 2\n2 3\n# comment\n4\n")
        assert structure.order() == 4
        assert structure.has_tuple("E", (1, 2)) and structure.has_tuple("E", (2, 1))
        assert structure.has_tuple("E", (3, 2))

    def test_string_vertices(self):
        structure = parse_edge_list("ada bob\nbob cyd\n")
        assert "ada" in structure.universe

    def test_malformed_line_rejected(self):
        with pytest.raises(FormatError):
            parse_edge_list("1 2 3\n")

    def test_empty_rejected(self):
        with pytest.raises(FormatError):
            parse_edge_list("# nothing\n")


def run_cli(*args, expect: int = 0) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == expect, result.stderr
    return result.stdout


class TestCli:
    @pytest.fixture
    def graph_file(self, tmp_path):
        target = tmp_path / "graph.txt"
        target.write_text("1 2\n2 3\n3 4\n4 1\n")
        return str(target)

    def test_check(self, graph_file):
        out = run_cli("check", graph_file, "forall x. @eq(#(y). E(x, y), 2)")
        assert out.strip() == "True"

    def test_count(self, graph_file):
        out = run_cli(
            "count", graph_file, "E(x, y) & E(y, z)", "--vars", "x", "y", "z"
        )
        assert out.strip() == "16"

    def test_term(self, graph_file):
        out = run_cli("term", graph_file, "#(x, y). E(x, y)")
        assert out.strip() == "8"

    def test_unary(self, graph_file):
        out = run_cli("unary", graph_file, "#(y). E(x, y)", "--var", "x")
        lines = dict(line.split("\t") for line in out.strip().splitlines())
        assert lines == {"1": "2", "2": "2", "3": "2", "4": "2"}

    def test_info(self, graph_file):
        out = run_cli("info", graph_file)
        report = json.loads(out)
        assert report["order"] == 4
        assert report["degeneracy"] == 2

    def test_formula_analysis(self):
        out = run_cli("formula", "exists x. @even(#(y). E(x, y))")
        assert "is_foc1: True" in out

    def test_fragment_violation_reported(self, graph_file):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "check",
                graph_file,
                "exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))",
            ],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 2
        assert "FOC1" in result.stderr

    def test_fragment_check_can_be_disabled(self, graph_file):
        out = run_cli(
            "check",
            graph_file,
            "exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))",
            "--no-fragment-check",
        )
        assert out.strip() == "True"

    def test_parse_error_exit_code(self, graph_file):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "check", graph_file, "E(x,"],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 2

    def test_missing_file(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "info", "/nonexistent/file.txt"],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 2


class TestCliExplain:
    """`explain` renders a compiled plan without evaluating; exit codes
    follow the CLI contract (0 ok, 2 bad input)."""

    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "explain", *args],
            capture_output=True,
            text=True,
            timeout=240,
        )

    def test_sentence_plan_exits_0_with_stage_annotations(self):
        result = self._run("exists x. @even(#(y). E(x, y))")
        assert result.returncode == 0, result.stderr
        out = result.stdout
        assert "plan: model_check" in out
        assert "stratification (Theorem 6.10)" in out
        assert "count DAG (Lemma 6.4)" in out
        assert "Paux__0" in out
        assert "plan cache:" in out

    def test_counting_term_plan_exits_0(self):
        result = self._run("#(x, y). E(x, y)")
        assert result.returncode == 0, result.stderr
        assert "plan: ground_term" in result.stdout
        assert "guard" in result.stdout

    def test_parse_error_exits_2(self):
        result = self._run("E(x,")
        assert result.returncode == 2
        assert "error:" in result.stderr
        assert result.stdout == ""

    def test_fragment_violation_exits_2(self):
        result = self._run(
            "exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))"
        )
        assert result.returncode == 2
        assert "FOC1" in result.stderr

    def test_fragment_check_can_be_disabled(self):
        result = self._run(
            "exists x. @even(#(y). E(x, y))", "--no-fragment-check"
        )
        assert result.returncode == 0, result.stderr


class TestCliRobustness:
    """Exit-code contract: 0 ok, 2 bad input, 3 internal bug, 4 budget."""

    @pytest.fixture
    def dense_file(self, tmp_path):
        # K12 as an edge list: enumeration-heavy queries blow up here.
        lines = [f"{u} {v}" for u in range(1, 13) for v in range(u + 1, 13)]
        target = tmp_path / "dense.txt"
        target.write_text("\n".join(lines) + "\n")
        return str(target)

    @pytest.fixture
    def graph_file(self, tmp_path):
        target = tmp_path / "graph.txt"
        target.write_text("1 2\n2 3\n3 4\n4 1\n")
        return str(target)

    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=240,
        )

    @pytest.mark.parametrize("engine", ["foc1", "robust", "baseline"])
    def test_budget_exhaustion_exits_4(self, dense_file, engine):
        result = self._run(
            "count",
            dense_file,
            "E(x, y) & E(y, z) & E(z, w)",
            "--vars", "x", "y", "z", "w",
            "--engine", engine,
            "--max-steps", "5000",
            "--timeout", "30",
        )
        assert result.returncode == 4, result.stderr
        assert "budget exhausted" in result.stderr

    @pytest.mark.parametrize("engine", ["foc1", "robust", "baseline"])
    def test_engines_agree_on_the_cli(self, graph_file, engine):
        result = self._run(
            "count", graph_file, "E(x, y)", "--vars", "x", "y", "--engine", engine
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "8"

    def test_robust_engine_reports_on_stderr(self, graph_file):
        result = self._run(
            "check", graph_file, "exists x. @geq1(#(y). E(x, y))",
            "--engine", "robust",
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "True"
        assert "answered by foc1" in result.stderr

    def test_generous_budget_still_answers(self, graph_file):
        result = self._run(
            "term", graph_file, "#(x, y). E(x, y)",
            "--timeout", "60", "--max-steps", "1000000",
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "8"

    def test_retries_flag_heals_a_faulted_run(self, graph_file, capsys):
        # In-process so the fault injector reaches the engine's pool.
        import repro.__main__ as cli
        from repro.robust import FaultInjector, inject_faults

        assert cli.main(["unary", graph_file, "#(y). E(x, y)", "--var", "x"]) == 0
        serial_out = capsys.readouterr().out
        with inject_faults(FaultInjector({"worker.task": 1})) as injector:
            code = cli.main(
                [
                    "unary", graph_file, "#(y). E(x, y)", "--var", "x",
                    "--workers", "2", "--retries", "2",
                ]
            )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == serial_out  # byte-identical after healing
        assert injector.fired["worker.task"] == 1

    def test_salvage_flag_exits_5_with_partial_output(self, graph_file, capsys):
        import repro.__main__ as cli
        from repro.robust import FaultInjector, inject_faults

        assert cli.main(["unary", graph_file, "#(y). E(x, y)", "--var", "x"]) == 0
        serial_lines = set(capsys.readouterr().out.strip().splitlines())
        with inject_faults(FaultInjector({"worker.task": 1})):
            code = cli.main(
                [
                    "unary", graph_file, "#(y). E(x, y)", "--var", "x",
                    "--workers", "2", "--on-shard-failure", "salvage",
                ]
            )
        captured = capsys.readouterr()
        assert code == 5
        assert "partial" in captured.err
        assert "coverage" in captured.err
        # The covered lines are a strict, exact subset of the full answer.
        partial_lines = set(captured.out.strip().splitlines())
        assert partial_lines < serial_lines

    def test_negative_retries_exits_2(self, graph_file):
        result = self._run(
            "count", graph_file, "E(x, y)", "--vars", "x", "y",
            "--retries", "-1",
        )
        assert result.returncode == 2

    def test_bad_failure_mode_rejected_by_argparse(self, graph_file):
        result = self._run(
            "count", graph_file, "E(x, y)", "--vars", "x", "y",
            "--on-shard-failure", "ignore",
        )
        assert result.returncode == 2

    def test_internal_error_exits_3_with_one_line(self, monkeypatch, capsys):
        # Simulate a genuine bug behind the CLI surface: no traceback, one
        # line on stderr, exit code 3 (in-process; subprocesses can't be
        # monkeypatched).
        import repro.__main__ as cli

        def explode(path):
            raise ZeroDivisionError("simulated internal bug")

        monkeypatch.setattr(cli, "load_structure", explode)
        code = cli.main(["info", "whatever.txt"])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.err.strip() == (
            "internal error: ZeroDivisionError: simulated internal bug"
        )
        assert "Traceback" not in captured.err

    def test_bad_input_still_exits_2_in_process(self, capsys):
        import repro.__main__ as cli

        code = cli.main(["info", "/nonexistent/file.txt"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags", [("--timeout", "-5"), ("--max-steps", "-1")]
    )
    def test_negative_limits_are_bad_input_not_internal(self, graph_file, flags):
        # A nonsensical budget is the caller's mistake: exit 2, not 3.
        result = self._run("count", graph_file, "E(x, y)", "--vars", "x", "y", *flags)
        assert result.returncode == 2, result.stderr
        assert "must be non-negative" in result.stderr

    def test_exit_codes_are_distinct(self):
        from repro.__main__ import (
            EXIT_BAD_INPUT,
            EXIT_BUDGET,
            EXIT_INTERNAL,
            EXIT_OK,
            EXIT_PARTIAL,
        )

        assert (
            len({EXIT_OK, EXIT_BAD_INPUT, EXIT_INTERNAL, EXIT_BUDGET, EXIT_PARTIAL})
            == 5
        )


class TestCliPreemption:
    """Suspend/resume contract: exit 6, checkpoint on disk, identical
    output after resume; --report-json schema; budget-flag validation."""

    @pytest.fixture
    def graph_file(self, tmp_path):
        target = tmp_path / "graph.txt"
        target.write_text("1 2\n2 3\n3 4\n4 1\n1 3\n2 4\n")
        return str(target)

    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=240,
        )

    QUERY = ("count", "E(x, y) & E(y, z)", "--vars", "x", "y", "z")

    def _query(self, graph_file, *extra):
        cmd, formula, *rest = self.QUERY
        return self._run(cmd, graph_file, formula, *rest, *extra)

    def test_suspend_exits_6_and_writes_checkpoint(self, graph_file, tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        result = self._query(
            graph_file, "--max-steps", "10", "--checkpoint", ckpt
        )
        assert result.returncode == 6, result.stderr
        assert result.stdout == ""  # no half answer on stdout
        assert "# suspended:" in result.stderr
        assert f"--resume {ckpt}" in result.stderr
        assert os.path.exists(ckpt)

    def test_resume_completes_with_identical_output(self, graph_file, tmp_path):
        expected = self._query(graph_file)
        assert expected.returncode == 0, expected.stderr
        ckpt = str(tmp_path / "run.ckpt")
        first = self._query(
            graph_file, "--max-steps", "10", "--checkpoint", ckpt
        )
        assert first.returncode == 6, first.stderr
        resumed = self._query(
            graph_file, "--max-steps", "100000", "--resume", ckpt
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == expected.stdout

    def test_repeated_quantum_suspensions_still_converge(
        self, graph_file, tmp_path
    ):
        # Resume under the SAME tiny quantum: each round suspends again and
        # rewrites the checkpoint until the restored state carries the run
        # over the line — the multi-quantum CLI path of the differential
        # suite.  The quantum doubles only if a round records no progress.
        expected = self._query(graph_file)
        ckpt = str(tmp_path / "run.ckpt")
        quantum = 10
        result = self._query(
            graph_file, "--max-steps", str(quantum), "--checkpoint", ckpt
        )
        assert result.returncode == 6, result.stderr
        suspensions = 1
        for _ in range(40):
            result = self._query(
                graph_file, "--max-steps", str(quantum), "--resume", ckpt
            )
            if result.returncode == 0:
                break
            assert result.returncode == 6, result.stderr
            suspensions += 1
            quantum *= 2
        assert result.returncode == 0, result.stderr
        assert result.stdout == expected.stdout
        assert suspensions >= 2

    def test_resume_against_different_query_is_rejected(
        self, graph_file, tmp_path
    ):
        ckpt = str(tmp_path / "run.ckpt")
        first = self._query(
            graph_file, "--max-steps", "10", "--checkpoint", ckpt
        )
        assert first.returncode == 6, first.stderr
        other = self._run(
            "count", graph_file, "E(x, y)", "--vars", "x", "y",
            "--resume", ckpt,
        )
        assert other.returncode == 2, other.stderr
        assert "different query or structure" in other.stderr

    def test_resume_from_corrupt_checkpoint_exits_2(self, graph_file, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        ckpt.write_text("this is not a checkpoint\n")
        result = self._query(graph_file, "--resume", str(ckpt))
        assert result.returncode == 2, result.stderr
        assert "error:" in result.stderr
        assert "not a checkpoint" in result.stderr

    @pytest.mark.parametrize(
        "flags", [("--timeout", "0"), ("--max-steps", "0")]
    )
    def test_zero_limits_are_bad_input(self, graph_file, flags):
        result = self._run(
            "count", graph_file, "E(x, y)", "--vars", "x", "y", *flags
        )
        assert result.returncode == 2, result.stderr
        assert "must be a positive" in result.stderr

    def test_zero_limits_rejected_in_process(self, graph_file, capsys):
        import repro.__main__ as cli

        code = cli.main(
            ["count", graph_file, "E(x, y)", "--vars", "x", "y",
             "--max-steps", "0"]
        )
        assert code == 2
        assert "must be a positive integer" in capsys.readouterr().err

    def test_report_json_requires_robust_engine(self, graph_file, tmp_path):
        result = self._run(
            "count", graph_file, "E(x, y)", "--vars", "x", "y",
            "--report-json", str(tmp_path / "r.json"),
        )
        assert result.returncode == 2, result.stderr
        assert "--report-json requires --engine robust" in result.stderr

    def test_report_json_schema(self, graph_file, tmp_path):
        path = tmp_path / "report.json"
        result = self._run(
            "count", graph_file, "E(x, y)", "--vars", "x", "y",
            "--engine", "robust", "--report-json", str(path),
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(path.read_text())
        assert report["schema"] == "repro-robust-report/1"
        assert report["operation"] == "count"
        assert report["answered_by"] == "foc1"
        assert report["partial"] is None
        assert report["checkpoint"] is None
        stages = {s["stage"]: s for s in report["stages"]}
        assert set(stages) == {"main_algorithm", "foc1", "baseline"}
        assert stages["foc1"]["status"] == "ok"
        assert report["breakers"]["foc1"]["state"] == "closed"
        assert report["breakers"]["foc1"]["consecutive_failures"] == 0

    def test_report_json_records_suspension_checkpoint(
        self, graph_file, tmp_path
    ):
        path = tmp_path / "report.json"
        ckpt = str(tmp_path / "run.ckpt")
        result = self._query(
            graph_file, "--engine", "robust", "--max-steps", "10",
            "--checkpoint", ckpt, "--report-json", str(path),
        )
        assert result.returncode == 6, result.stderr
        report = json.loads(path.read_text())
        assert report["answered_by"] is None
        info = report["checkpoint"]
        assert info is not None
        assert info["operation"] == "count"
        assert info["suspensions"] == 1
        assert info["steps_spent"] > 0
        stages = {s["stage"]: s for s in report["stages"]}
        assert stages["foc1"]["status"] == "suspended"

    def test_six_exit_codes_are_distinct(self):
        from repro.__main__ import (
            EXIT_BAD_INPUT,
            EXIT_BUDGET,
            EXIT_INTERNAL,
            EXIT_OK,
            EXIT_PARTIAL,
            EXIT_SUSPENDED,
        )

        codes = {
            EXIT_OK,
            EXIT_BAD_INPUT,
            EXIT_INTERNAL,
            EXIT_BUDGET,
            EXIT_PARTIAL,
            EXIT_SUSPENDED,
        }
        assert len(codes) == 6
        assert EXIT_SUSPENDED == 6


class TestCliApprox:
    """``--engine approx``: seeded estimates with an explicit marker."""

    @pytest.fixture
    def dense_file(self, tmp_path):
        # Complete graph on 8 vertices: dense enough that sampling hits
        # often, small enough that the exact count (8*7*7 = 392 for the
        # path-of-length-2 query) is easy to cross-check.
        lines = [
            f"{u} {v}" for u in range(8) for v in range(u + 1, 8)
        ]
        target = tmp_path / "dense.txt"
        target.write_text("\n".join(lines) + "\n")
        return str(target)

    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=240,
        )

    def test_count_emits_estimate_with_marker(self, dense_file):
        result = self._run(
            "count", dense_file, "E(x, y) & E(y, z)",
            "--vars", "x", "y", "z",
            "--engine", "approx", "--epsilon", "0.1", "--seed", "0",
        )
        assert result.returncode == 0, result.stderr
        value = int(result.stdout.strip())
        # Exact count is 392; eps=0.1 with delta=0.05 keeps the
        # estimate comfortably inside +-20% on this input.
        assert 300 <= value <= 480
        assert "# approximate:" in result.stderr

    def test_term_accepts_ground_counting_terms(self, dense_file):
        result = self._run(
            "term", dense_file, "#(x, y). E(x, y)",
            "--engine", "approx", "--seed", "3",
        )
        assert result.returncode == 0, result.stderr
        assert "# approximate:" in result.stderr
        int(result.stdout.strip())

    def test_same_seed_same_output(self, dense_file):
        args = (
            "count", dense_file, "E(x, y)", "--vars", "x", "y",
            "--engine", "approx", "--seed", "7",
        )
        first = self._run(*args)
        second = self._run(*args)
        assert first.returncode == second.returncode == 0
        assert first.stdout == second.stdout

    def test_report_json_is_flagged_approximate(self, dense_file, tmp_path):
        path = tmp_path / "report.json"
        result = self._run(
            "count", dense_file, "E(x, y)", "--vars", "x", "y",
            "--engine", "approx", "--seed", "1",
            "--report-json", str(path),
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(path.read_text())
        assert report["schema"] == "repro-approx-result/1"
        assert report["approximate"] is True
        assert report["seed"] == 1
        assert report["epsilon"] == 0.1

    def test_check_rejects_the_approx_engine(self, dense_file):
        result = self._run(
            "check", dense_file, "exists x. E(x, x)", "--engine", "approx"
        )
        assert result.returncode == 2
        assert "count" in result.stderr

    def test_fallback_requires_a_cascade_engine(self, dense_file):
        result = self._run(
            "count", dense_file, "E(x, y)", "--vars", "x", "y",
            "--approx-fallback",
        )
        assert result.returncode == 2
        assert "robust" in result.stderr

    def test_robust_fallback_report_carries_the_flag(self, dense_file, tmp_path):
        path = tmp_path / "report.json"
        result = self._run(
            "count", dense_file, "E(x, y)", "--vars", "x", "y",
            "--engine", "robust", "--approx-fallback",
            "--report-json", str(path),
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(path.read_text())
        # Plenty of budget: an exact stage answers, and the report says
        # so explicitly even with the sampler armed.
        assert report["approximate"] is False
        assert "approx" in [s["stage"] for s in report["stages"]]


class TestCliInterrupt:
    """Graceful interrupt contract: SIGINT/SIGTERM never dump a
    traceback — one line + exit 130, or checkpoint + exit 6 when a
    checkpoint session is active."""

    @pytest.fixture
    def heavy_file(self, tmp_path):
        # K30 through the brute-force engine: ~6s of main-thread
        # evaluation, a wide window to land a signal mid-run.
        lines = [
            f"{u} {v}" for u in range(1, 31) for v in range(u + 1, 31)
        ]
        target = tmp_path / "k30.txt"
        target.write_text("\n".join(lines) + "\n")
        return str(target)

    @pytest.fixture
    def graph_file(self, tmp_path):
        target = tmp_path / "graph.txt"
        target.write_text("1 2\n2 3\n3 4\n4 1\n")
        return str(target)

    HEAVY_QUERY = (
        "E(x, y) & E(y, z) & E(z, w)",
        "--vars", "x", "y", "z", "w",
        "--engine", "baseline",
    )

    def _interrupt_mid_run(self, *args):
        import signal
        import time

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(1.5)  # past startup, well before the ~6s run ends
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        return proc.returncode, out, err

    def test_sigterm_exits_130_with_one_line(self, heavy_file):
        code, out, err = self._interrupt_mid_run(
            "count", heavy_file, *self.HEAVY_QUERY
        )
        assert code == 130, err
        assert out == ""  # no half answer
        assert err.strip() == "interrupted"
        assert "Traceback" not in err

    def test_sigterm_with_checkpoint_saves_and_exits_6(
        self, heavy_file, tmp_path
    ):
        ckpt = str(tmp_path / "run.ckpt")
        code, out, err = self._interrupt_mid_run(
            "count", heavy_file, *self.HEAVY_QUERY, "--checkpoint", ckpt
        )
        assert code == 6, err
        assert out == ""
        assert "# interrupted: saving checkpoint" in err
        assert f"--resume {ckpt}" in err
        assert "Traceback" not in err
        assert os.path.exists(ckpt)

    def test_keyboard_interrupt_exits_130_in_process(
        self, monkeypatch, capsys
    ):
        import repro.__main__ as cli

        def interrupt(path):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "load_structure", interrupt)
        code = cli.main(["info", "whatever.txt"])
        captured = capsys.readouterr()
        assert code == 130
        assert captured.err.strip() == "interrupted"
        assert "Traceback" not in captured.err

    def test_keyboard_interrupt_with_checkpoint_exits_6_in_process(
        self, graph_file, tmp_path, monkeypatch, capsys
    ):
        import repro.__main__ as cli
        from repro.core.evaluator import Foc1Evaluator

        def interrupt(self, structure, expression, variables):
            raise KeyboardInterrupt

        monkeypatch.setattr(Foc1Evaluator, "count", interrupt)
        ckpt = str(tmp_path / "run.ckpt")
        code = cli.main(
            ["count", graph_file, "E(x, y)", "--vars", "x", "y",
             "--checkpoint", ckpt]
        )
        captured = capsys.readouterr()
        assert code == 6
        assert "# interrupted: saving checkpoint" in captured.err
        assert os.path.exists(ckpt)

    def test_seven_exit_codes_are_distinct(self):
        from repro.__main__ import (
            EXIT_BAD_INPUT,
            EXIT_BUDGET,
            EXIT_INTERNAL,
            EXIT_INTERRUPTED,
            EXIT_OK,
            EXIT_PARTIAL,
            EXIT_SUSPENDED,
        )

        codes = {
            EXIT_OK,
            EXIT_BAD_INPUT,
            EXIT_INTERNAL,
            EXIT_BUDGET,
            EXIT_PARTIAL,
            EXIT_SUSPENDED,
            EXIT_INTERRUPTED,
        }
        assert len(codes) == 7
        assert EXIT_INTERRUPTED == 130  # 128 + SIGINT, shell convention


class TestCliServe:
    """`serve` replays a JSONL workload through the multi-tenant
    service: JSONL responses, typed shed records, `# serve` summary."""

    @pytest.fixture
    def graph_file(self, tmp_path):
        # K4: count E(x, y) = 12, term #(x, y). E(x, y) = 12.
        target = tmp_path / "graph.txt"
        target.write_text("1 2\n2 3\n3 4\n4 1\n1 3\n2 4\n")
        return str(target)

    def _workload(self, tmp_path, lines):
        target = tmp_path / "workload.jsonl"
        target.write_text(
            "\n".join(
                line if isinstance(line, str) else json.dumps(line)
                for line in lines
            )
            + "\n"
        )
        return str(target)

    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "serve", *args],
            capture_output=True,
            text=True,
            timeout=240,
        )

    def test_end_to_end_values(self, graph_file, tmp_path):
        workload = self._workload(
            tmp_path,
            [
                {"tenant": "a", "op": "count", "query": "E(x, y)",
                 "vars": ["x", "y"], "id": "c1"},
                {"tenant": "b", "op": "term",
                 "query": "#(x, y). E(x, y)", "id": "t1"},
                {"tenant": "a", "op": "check",
                 "query": "forall x. @geq1(#(y). E(x, y))", "id": "k1"},
            ],
        )
        result = self._run(graph_file, workload)
        assert result.returncode == 0, result.stderr
        responses = {
            line["request_id"]: line
            for line in map(json.loads, result.stdout.strip().splitlines())
        }
        assert responses["c1"]["value"] == 12
        assert responses["t1"]["value"] == 12
        assert responses["k1"]["value"] is True
        assert all(r["status"] == "ok" for r in responses.values())
        assert all(r["approximate"] is False for r in responses.values())
        assert '"# serve' not in result.stdout
        summary = json.loads(
            next(
                line for line in result.stderr.splitlines()
                if line.startswith("# serve ")
            )[len("# serve "):]
        )
        assert summary["requests"] == 3
        assert summary["completed"] == 3
        assert summary["orphaned_checkpoints"] == 0

    def test_output_flag_writes_jsonl_file(self, graph_file, tmp_path):
        workload = self._workload(
            tmp_path,
            [{"op": "count", "query": "E(x, y)", "vars": ["x", "y"],
              "id": "c1"}],
        )
        out_path = tmp_path / "responses.jsonl"
        result = self._run(graph_file, workload, "--output", str(out_path))
        assert result.returncode == 0, result.stderr
        assert result.stdout == ""
        lines = [
            json.loads(line)
            for line in out_path.read_text().strip().splitlines()
        ]
        assert lines[0]["value"] == 12
        assert lines[0]["schema"] == "repro-serve-response/1"

    def test_overload_sheds_typed_records(self, graph_file, tmp_path):
        workload = self._workload(
            tmp_path,
            [
                {"tenant": "t", "op": "count", "query": "E(x, y)",
                 "vars": ["x", "y"], "id": f"r{i}"}
                for i in range(6)
            ],
        )
        # One quantum slot, zero queue, six eager clients: everything
        # past the running request sheds with a machine-readable reason.
        result = self._run(
            graph_file, workload,
            "--serve-workers", "1", "--max-queue", "0", "--clients", "6",
        )
        assert result.returncode == 0, result.stderr
        lines = [
            json.loads(line)
            for line in result.stdout.strip().splitlines()
        ]
        shed = [line for line in lines if line["status"] == "shed"]
        assert shed, "zero queue must shed under concurrent clients"
        assert all(line["reason"] == "queue_full" for line in shed)
        assert "killed" not in result.stderr  # shed, never killed

    def test_metrics_flag_prints_serve_counters(self, graph_file, tmp_path):
        workload = self._workload(
            tmp_path,
            [{"op": "count", "query": "E(x, y)", "vars": ["x", "y"],
              "id": "c1"}],
        )
        result = self._run(graph_file, workload, "--metrics")
        assert result.returncode == 0, result.stderr
        metrics_line = next(
            line for line in result.stderr.splitlines()
            if line.startswith("# metrics ")
        )
        snapshot = json.loads(metrics_line[len("# metrics "):])
        assert snapshot["counters"]["serve.admitted"] == 1
        assert snapshot["counters"]["serve.completed"] == 1

    def test_invalid_json_line_exits_2(self, graph_file, tmp_path):
        workload = self._workload(tmp_path, ["this is not json"])
        result = self._run(graph_file, workload)
        assert result.returncode == 2, result.stderr
        assert "workload line 1" in result.stderr
        assert "invalid JSON" in result.stderr

    def test_missing_query_field_exits_2(self, graph_file, tmp_path):
        workload = self._workload(tmp_path, [{"op": "count"}])
        result = self._run(graph_file, workload)
        assert result.returncode == 2, result.stderr
        assert "'query' field" in result.stderr

    def test_empty_workload_exits_2(self, graph_file, tmp_path):
        workload = self._workload(tmp_path, ["# only a comment"])
        result = self._run(graph_file, workload)
        assert result.returncode == 2, result.stderr
        assert "contains no requests" in result.stderr

    def test_bad_quota_flags_exit_2(self, graph_file, tmp_path):
        workload = self._workload(
            tmp_path,
            [{"op": "count", "query": "E(x, y)", "vars": ["x", "y"]}],
        )
        result = self._run(graph_file, workload, "--max-inflight", "0")
        assert result.returncode == 2, result.stderr
        result = self._run(graph_file, workload, "--clients", "0")
        assert result.returncode == 2, result.stderr
