"""The approximate tier's differential gate (ISSUE 9).

Thirty seeded dense graphs, each small enough that brute-force
enumeration still terminates, are counted both exactly
(:func:`repro.logic.semantics.count_solutions`) and through the sampler.
The gate asserts two things:

* **accuracy** — the observed relative error stays within the planned
  ``epsilon`` at (better than) the promised confidence: with
  ``delta = 0.05`` per seed, more than 2 misses out of 30 would already
  be a < 1% probability event under the Hoeffding guarantee, and in
  practice the bound's slack means zero misses;
* **seed stability** — the same seed produces byte-identical results
  (modulo wall-clock ``elapsed``) on the serial, thread, and process
  backends at any worker count, because the estimate folds fixed seeded
  blocks in block order.

``REPRO_APPROX_QUICK=1`` trims the sweep to its first 8 seeds so CI's
``approx-smoke`` job finishes in seconds; the full matrix runs by
default.
"""

import os

import pytest

from repro.approx import ApproxEvaluator
from repro.logic.parser import parse_formula
from repro.logic.semantics import count_solutions
from repro.sparse.classes import dense_random_graph

EPSILON = 0.1
DELTA = 0.05

#: Per-seed miss allowance for the accuracy sweep: P(miss) <= delta per
#: seed, so 3+ misses in 30 runs has probability < 1% even at the bound.
MAX_MISSES = 2

FULL_SEEDS = tuple(range(30))
QUICK_SEEDS = FULL_SEEDS[:8]


def _seeds():
    if os.environ.get("REPRO_APPROX_QUICK", "") == "1":
        return QUICK_SEEDS
    return FULL_SEEDS


def _structure(seed):
    # n in 14..16 keeps exact enumeration trivial (n^2 assignments)
    # while the G(n, 1/2) edge set stays genuinely dense.
    return dense_random_graph(14 + seed % 3, probability=0.5, seed=seed)


def _approx(structure, phi, variables, seed, **kwargs):
    engine = ApproxEvaluator(
        epsilon=EPSILON, delta=DELTA, seed=seed, **kwargs
    )
    return engine.count(structure, phi, variables)


def _result_key(result):
    payload = result.to_dict()
    payload.pop("elapsed")
    return payload


def test_accuracy_against_exact_counts():
    phi = parse_formula("E(x, y)")
    misses = []
    for seed in _seeds():
        structure = _structure(seed)
        exact = count_solutions(structure, phi, ["x", "y"])
        result = _approx(structure, phi, ["x", "y"], seed)
        if result.relative_error_vs(exact) > EPSILON:
            misses.append((seed, exact, result.estimate))
    assert len(misses) <= MAX_MISSES, (
        f"{len(misses)} of {len(_seeds())} seeds exceeded "
        f"eps={EPSILON}: {misses}"
    )


def test_confidence_interval_covers_the_truth():
    phi = parse_formula("E(x, y) & E(y, z)")
    misses = []
    for seed in _seeds():
        structure = _structure(seed)
        exact = count_solutions(structure, phi, ["x", "y", "z"])
        result = _approx(structure, phi, ["x", "y", "z"], seed)
        if not result.ci_low <= exact <= result.ci_high:
            misses.append((seed, exact, result.ci_low, result.ci_high))
    assert len(misses) <= MAX_MISSES, (
        f"{len(misses)} of {len(_seeds())} intervals missed the exact "
        f"count: {misses}"
    )


def test_same_seed_same_estimate_across_runs():
    phi = parse_formula("E(x, y)")
    for seed in _seeds()[:4]:
        structure = _structure(seed)
        first = _approx(structure, phi, ["x", "y"], seed)
        second = _approx(structure, phi, ["x", "y"], seed)
        assert _result_key(first) == _result_key(second)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_seed_stability_across_backends(backend):
    phi = parse_formula("E(x, y)")
    seeds = _seeds()[:2] if backend == "process" else _seeds()[:4]
    for seed in seeds:
        structure = _structure(seed)
        serial = _approx(structure, phi, ["x", "y"], seed, workers=1)
        parallel = _approx(
            structure,
            phi,
            ["x", "y"],
            seed,
            workers=2,
            parallel_backend=backend,
        )
        assert _result_key(serial) == _result_key(parallel), (
            f"seed {seed} diverged on the {backend} backend"
        )
