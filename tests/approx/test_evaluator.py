"""Unit tests for :class:`repro.approx.ApproxEvaluator`: estimates,
determinism, budget participation, metrics, and input validation."""

import pytest

from repro.approx import ApproxEvaluator
from repro.errors import BudgetExceededError, ReproError
from repro.logic.parser import parse_formula, parse_term
from repro.obs import MetricsRegistry, collect_metrics
from repro.robust import EvaluationBudget
from repro.sparse.classes import dense_random_graph
from repro.structures.builders import path_graph


def _result_key(result):
    """Everything that must be byte-identical across runs and backends
    (``elapsed`` is wall-clock and legitimately varies)."""
    payload = result.to_dict()
    payload.pop("elapsed")
    return payload


class TestEstimates:
    def test_tautology_estimates_the_whole_space(self):
        structure = path_graph(10)
        result = ApproxEvaluator(seed=3).count(
            structure, parse_formula("x = x"), ["x", "y"]
        )
        assert result.estimate == 100.0
        assert result.value == 100
        assert result.hits == result.samples

    def test_contradiction_estimates_zero(self):
        structure = path_graph(10)
        result = ApproxEvaluator(seed=3).count(
            structure, parse_formula("!(x = x)"), ["x"]
        )
        assert result.estimate == 0.0
        assert result.ci_low == 0.0

    def test_ci_brackets_the_estimate_inside_the_space(self):
        structure = dense_random_graph(20, probability=0.5, seed=1)
        result = ApproxEvaluator(seed=0).count(
            structure, parse_formula("E(x, y)"), ["x", "y"]
        )
        assert 0.0 <= result.ci_low <= result.estimate <= result.ci_high
        assert result.ci_high <= result.space == 400.0

    def test_ground_term_value_delegates_to_count(self):
        structure = dense_random_graph(16, probability=0.5, seed=2)
        engine = ApproxEvaluator(seed=5)
        term = parse_term("#(x, y). E(x, y)")
        via_term = engine.ground_term_value(structure, term)
        via_count = engine.count(structure, parse_formula("E(x, y)"), ["x", "y"])
        assert _result_key(via_term) == _result_key(via_count)

    def test_median_of_means_method(self):
        structure = dense_random_graph(16, probability=0.5, seed=2)
        result = ApproxEvaluator(seed=1, method="median_of_means").count(
            structure, parse_formula("E(x, y)"), ["x", "y"]
        )
        assert result.method == "median_of_means"
        assert 0.0 <= result.estimate <= result.space


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        structure = dense_random_graph(18, probability=0.5, seed=4)
        phi = parse_formula("E(x, y)")
        first = ApproxEvaluator(seed=11).count(structure, phi, ["x", "y"])
        second = ApproxEvaluator(seed=11).count(structure, phi, ["x", "y"])
        assert _result_key(first) == _result_key(second)

    def test_result_records_its_seed(self):
        structure = path_graph(6)
        result = ApproxEvaluator(seed=42).count(
            structure, parse_formula("E(x, y)"), ["x", "y"]
        )
        assert result.seed == 42


class TestBudget:
    def test_exhausted_budget_raises(self):
        structure = dense_random_graph(20, probability=0.5, seed=0)
        budget = EvaluationBudget(max_steps=50)
        engine = ApproxEvaluator(budget=budget, seed=0)
        with pytest.raises(BudgetExceededError):
            engine.count(structure, parse_formula("E(x, y)"), ["x", "y"])

    def test_call_site_budget_overrides_the_stored_one(self):
        structure = dense_random_graph(20, probability=0.5, seed=0)
        engine = ApproxEvaluator(budget=EvaluationBudget(), seed=0)
        with pytest.raises(BudgetExceededError):
            engine.count(
                structure,
                parse_formula("E(x, y)"),
                ["x", "y"],
                budget=EvaluationBudget(max_steps=50),
            )


class TestObservability:
    def test_counters_and_histograms(self):
        structure = dense_random_graph(16, probability=0.5, seed=1)
        registry = MetricsRegistry()
        with collect_metrics(registry):
            ApproxEvaluator(seed=0).count(
                structure, parse_formula("E(x, y)"), ["x", "y"]
            )
        assert registry.counter("approx.count") == 1
        assert registry.counter("approx.samples") > 0
        assert registry.counter("approx.samples_planned") > 0
        assert "approx.elapsed_s" in registry.histograms
        assert "approx.ci_width" in registry.histograms


class TestValidation:
    def test_no_variables_rejected(self):
        with pytest.raises(ReproError):
            ApproxEvaluator().count(path_graph(4), parse_formula("x = x"), [])

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ReproError):
            ApproxEvaluator().count(
                path_graph(4), parse_formula("E(x, y)"), ["x", "x"]
            )

    def test_uncounted_free_variable_rejected(self):
        with pytest.raises(ReproError):
            ApproxEvaluator().count(
                path_graph(4), parse_formula("E(x, y)"), ["x"]
            )

    def test_non_count_term_rejected(self):
        with pytest.raises(ReproError):
            ApproxEvaluator().ground_term_value(path_graph(4), parse_term("3"))

    def test_open_count_term_rejected(self):
        with pytest.raises(ReproError):
            ApproxEvaluator().ground_term_value(
                path_graph(4), parse_term("#(y). E(x, y)")
            )
