"""Unit tests for :mod:`repro.approx.planner`: sample-size math, floors,
truncation, and input validation."""

import math

import pytest

from repro.approx import (
    DEFAULT_MAX_SAMPLES,
    DEFAULT_MIN_DENSITY,
    SamplePlan,
    plan_samples,
)
from repro.errors import ReproError


class _Bound:
    def __init__(self, lower):
        self.lower = lower


class TestHoeffdingPlans:
    def test_heuristic_floor_sizes_the_run(self):
        plan = plan_samples(10_000.0, 0.1, 0.05)
        # floor = min_density * space = 500, eps_add = 0.005.
        assert plan.floor == DEFAULT_MIN_DENSITY * 10_000.0
        assert plan.additive_epsilon() == pytest.approx(0.005)
        wanted = math.ceil(math.log(2 / 0.05) / (2 * 0.005**2))
        assert plan.samples == wanted
        assert not plan.provable
        assert not plan.truncated
        assert plan.blocks == 1

    def test_provable_lower_bound_tightens_the_plan(self):
        loose = plan_samples(10_000.0, 0.1, 0.05)
        tight = plan_samples(10_000.0, 0.1, 0.05, bound=_Bound(5_000.0))
        assert tight.provable
        assert tight.floor == 5_000.0
        assert tight.samples < loose.samples

    def test_floor_never_exceeds_space(self):
        plan = plan_samples(100.0, 0.1, 0.05, bound=_Bound(1e9))
        assert plan.floor == 100.0
        assert plan.provable

    def test_tiny_plans_round_up_to_minimum(self):
        plan = plan_samples(100.0, 10.0, 0.05, bound=_Bound(100.0))
        assert plan.samples == 32

    def test_truncation_is_announced(self):
        plan = plan_samples(1e12, 0.01, 0.01, min_density=1e-6)
        assert plan.truncated
        assert plan.samples == DEFAULT_MAX_SAMPLES

    def test_none_lower_is_heuristic(self):
        plan = plan_samples(10_000.0, 0.1, 0.05, bound=_Bound(None))
        assert not plan.provable
        assert plan.floor == DEFAULT_MIN_DENSITY * 10_000.0


class TestMedianOfMeans:
    def test_whole_blocks(self):
        plan = plan_samples(
            10_000.0, 0.5, 0.05, bound=_Bound(5_000.0), method="median_of_means"
        )
        assert plan.method == "median_of_means"
        assert plan.blocks == math.ceil(8 * math.log(1 / 0.05))
        assert plan.samples % plan.blocks == 0

    def test_truncated_mom_still_has_whole_blocks(self):
        plan = plan_samples(
            1e12, 0.01, 0.01, min_density=1e-6, method="median_of_means"
        )
        assert plan.truncated
        assert plan.samples <= DEFAULT_MAX_SAMPLES
        assert plan.samples % plan.blocks == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"epsilon": -1.0},
            {"delta": 0.0},
            {"delta": 1.0},
            {"min_density": 0.0},
            {"min_density": 1.5},
            {"max_samples": 8},
            {"method": "guessing"},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        base = {"space": 100.0, "epsilon": 0.1, "delta": 0.05}
        base.update(kwargs)
        with pytest.raises(ReproError):
            plan_samples(**base)

    def test_space_below_one_raises(self):
        with pytest.raises(ReproError):
            plan_samples(0.0, 0.1, 0.05)

    def test_plan_is_frozen(self):
        plan = plan_samples(100.0, 0.1, 0.05)
        assert isinstance(plan, SamplePlan)
        with pytest.raises(Exception):
            plan.samples = 1
