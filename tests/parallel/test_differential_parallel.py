"""Seeded differential tests: parallel output is byte-identical to serial.

The determinism guarantee (docs/PARALLEL.md) says every parallel entry
point produces the *same dict, in the same insertion order*, as the serial
loop, for every worker count.  These tests enforce it across seeded random
structures for the two ISSUE-mandated entry points —
:func:`~repro.core.cover_eval.evaluate_per_cluster` and
:meth:`~repro.core.evaluator.Foc1Evaluator.count_many` — plus the other
parallel paths (evaluate_basic_cover_unary, unary_term_values, the main
algorithm).

Plain ``random.Random(seed)`` so each case is a fixed, individually
re-runnable pytest id.
"""

import random

import pytest

from repro.core.clterms import BasicClTerm, CoverTerm
from repro.core.cover_eval import (
    evaluate_basic_cover_unary,
    evaluate_per_cluster,
)
from repro.core.evaluator import Foc1Evaluator
from repro.core.main_algorithm import (
    MainAlgorithmStats,
    evaluate_unary_main_algorithm,
)
from repro.logic.builder import Rel
from repro.logic.parser import parse_formula, parse_term
from repro.sparse.covers import sparse_cover
from repro.structures.builders import graph_structure

E = Rel("E", 2)

SEEDS = range(30)


def _random_graph(rng: random.Random, max_n: int = 12):
    n = rng.randint(2, max_n)
    vertices = list(range(1, n + 1))
    pairs = [(u, v) for u in vertices for v in vertices if u < v]
    edges = [pair for pair in pairs if rng.random() < 0.3]
    return graph_structure(vertices, edges)


def degree_cover_term():
    return CoverTerm(
        variables=("y1", "y2"),
        edges=frozenset({(1, 2)}),
        link_distance=1,
        component_formulas=((frozenset({1, 2}), E("y1", "y2")),),
        unary=True,
    )


class TestPerClusterParallelParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_workers_1_vs_4_byte_identical(self, seed):
        rng = random.Random(1000 + seed)
        structure = _random_graph(rng)
        cover = sparse_cover(structure, 2)
        term = degree_cover_term()
        serial = evaluate_per_cluster(structure, cover, term)
        one = evaluate_per_cluster(structure, cover, term, workers=1)
        four = evaluate_per_cluster(structure, cover, term, workers=4)
        # Byte-identical: same values AND same dict insertion order.
        assert list(one.items()) == list(serial.items())
        assert list(four.items()) == list(serial.items())

    @pytest.mark.parametrize("seed", (0, 7, 19))
    def test_odd_worker_counts_agree_too(self, seed):
        rng = random.Random(2000 + seed)
        structure = _random_graph(rng)
        cover = sparse_cover(structure, 2)
        term = degree_cover_term()
        serial = evaluate_per_cluster(structure, cover, term)
        for workers in (2, 3, 5):
            parallel = evaluate_per_cluster(
                structure, cover, term, workers=workers
            )
            assert list(parallel.items()) == list(serial.items())


class TestCountManyParallelParity:
    FORMULAS = (
        ("E(x, y)", ["x", "y"]),
        ("E(x, y) & E(y, z)", ["x", "y", "z"]),
        ("exists y. E(x, y)", ["x"]),
    )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_workers_1_vs_4_identical_and_match_serial_counts(self, seed):
        rng = random.Random(3000 + seed)
        structures = [_random_graph(rng, max_n=8) for _ in range(rng.randint(2, 5))]
        text, variables = self.FORMULAS[seed % len(self.FORMULAS)]
        phi = parse_formula(text)
        serial_engine = Foc1Evaluator()
        expected = [
            serial_engine.count(s, phi, variables) for s in structures
        ]
        one = Foc1Evaluator(workers=1).count_many(structures, phi, variables)
        four = Foc1Evaluator(workers=4).count_many(structures, phi, variables)
        assert one == expected
        assert four == expected

    def test_empty_batch(self):
        phi = parse_formula("E(x, y)")
        assert Foc1Evaluator(workers=4).count_many([], phi, ["x", "y"]) == []

    def test_order_matches_input_order(self):
        rng = random.Random(99)
        structures = [_random_graph(rng, max_n=6) for _ in range(6)]
        phi = parse_formula("E(x, y)")
        counts = Foc1Evaluator(workers=3).count_many(structures, phi, ["x", "y"])
        expected = [
            Foc1Evaluator().count(s, phi, ["x", "y"]) for s in structures
        ]
        assert counts == expected


class TestOtherParallelEntryPoints:
    @pytest.mark.parametrize("seed", (0, 5, 11, 23))
    def test_basic_cover_unary_parity(self, seed):
        rng = random.Random(4000 + seed)
        structure = _random_graph(rng)
        cover = sparse_cover(structure, 2)
        term = degree_cover_term()
        serial = evaluate_basic_cover_unary(structure, cover, term)
        four = evaluate_basic_cover_unary(structure, cover, term, workers=4)
        assert list(four.items()) == list(serial.items())

    @pytest.mark.parametrize("seed", (1, 8, 13, 27))
    def test_unary_term_values_parity(self, seed):
        rng = random.Random(5000 + seed)
        structure = _random_graph(rng)
        term = parse_term("#(y). E(x, y)")
        serial = Foc1Evaluator().unary_term_values(structure, term, "x")
        four = Foc1Evaluator(workers=4).unary_term_values(structure, term, "x")
        assert list(four.items()) == list(serial.items())

    @pytest.mark.parametrize("seed", (2, 9, 16, 29))
    def test_main_algorithm_values_and_stats_parity(self, seed):
        rng = random.Random(6000 + seed)
        structure = _random_graph(rng)
        term = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 1, 1, frozenset({(1, 2)}), unary=True
        )
        serial_stats = MainAlgorithmStats()
        serial = evaluate_unary_main_algorithm(
            structure, term, stats=serial_stats
        )
        four_stats = MainAlgorithmStats()
        four = evaluate_unary_main_algorithm(
            structure, term, stats=four_stats, workers=4
        )
        assert list(four.items()) == list(serial.items())
        assert four_stats == serial_stats


class TestProcessBackend:
    def test_per_cluster_process_parity(self):
        rng = random.Random(7000)
        structure = _random_graph(rng)
        cover = sparse_cover(structure, 2)
        term = degree_cover_term()
        serial = evaluate_per_cluster(structure, cover, term)
        proc = evaluate_per_cluster(
            structure, cover, term, workers=2, backend="process"
        )
        assert list(proc.items()) == list(serial.items())

    def test_count_many_process_parity(self):
        rng = random.Random(7001)
        structures = [_random_graph(rng, max_n=6) for _ in range(4)]
        phi = parse_formula("E(x, y)")
        expected = [
            Foc1Evaluator().count(s, phi, ["x", "y"]) for s in structures
        ]
        engine = Foc1Evaluator(workers=2, parallel_backend="process")
        assert engine.count_many(structures, phi, ["x", "y"]) == expected
