"""The worker-pool abstraction: sharding, ordering, budget slicing,
metrics merging, error determinism, retries and salvage
(see docs/PARALLEL.md)."""

import threading

import pytest

from repro.errors import BudgetExceededError, ReproError
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.parallel import (
    BACKENDS,
    WORKERS_ENV_VAR,
    ParallelError,
    ShardOutcome,
    WorkerPool,
    resolve_workers,
    shard,
)
from repro.robust.budget import EvaluationBudget
from repro.robust.retry import RetryPolicy


def _no_sleep_policy(retries=2):
    return RetryPolicy(retries=retries, base_delay=0.0)


class _Flaky:
    """A thread-safe callable failing its first ``failures`` calls per key."""

    def __init__(self, failures, error=ReproError):
        self.failures = dict(failures)
        self.error = error
        self.calls = {}
        self._lock = threading.Lock()

    def seen(self, key):
        with self._lock:
            self.calls[key] = self.calls.get(key, 0) + 1
            if self.calls[key] <= self.failures.get(key, 0):
                raise self.error(f"transient failure of {key}")


class TestResolveWorkers:
    def test_explicit_argument_wins(self):
        assert resolve_workers(3, environ={WORKERS_ENV_VAR: "7"}) == 3

    def test_env_var_is_the_fallback(self):
        assert resolve_workers(None, environ={WORKERS_ENV_VAR: "4"}) == 4
        assert resolve_workers(None, environ={WORKERS_ENV_VAR: " 2 "}) == 2

    def test_default_is_serial(self):
        assert resolve_workers(None, environ={}) == 1
        assert resolve_workers(None, environ={WORKERS_ENV_VAR: ""}) == 1

    def test_rejects_non_positive_and_junk(self):
        with pytest.raises(ParallelError):
            resolve_workers(0)
        with pytest.raises(ParallelError):
            resolve_workers(-2)
        with pytest.raises(ParallelError):
            resolve_workers(None, environ={WORKERS_ENV_VAR: "many"})
        with pytest.raises(ParallelError):
            resolve_workers(None, environ={WORKERS_ENV_VAR: "0"})


class TestShard:
    def test_contiguous_order_preserving_partition(self):
        items = list(range(10))
        chunks = shard(items, 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert [x for chunk in chunks for x in chunk] == items

    def test_more_shards_than_items_drops_empties(self):
        assert shard([1, 2], 5) == [[1], [2]]
        assert shard([], 4) == []

    def test_single_shard_is_the_whole_list(self):
        assert shard([3, 1, 2], 1) == [[3, 1, 2]]

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ParallelError):
            shard([1], 0)

    def test_deterministic(self):
        items = list(range(17))
        assert shard(items, 4) == shard(items, 4)


class TestWorkerPool:
    def test_backends_constant(self):
        assert BACKENDS == ("serial", "thread", "process")

    def test_workers_one_degrades_to_serial_backend(self):
        assert WorkerPool(1, "thread").backend == "serial"
        assert WorkerPool(1, "process").backend == "serial"
        assert WorkerPool(4, "thread").backend == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParallelError):
            WorkerPool(2, "greenlet")

    def test_map_preserves_input_order(self):
        pool = WorkerPool(4)
        # Make late items finish first to prove ordering is by input, not
        # completion.
        import time

        def slow_for_small(x):
            time.sleep(0.02 if x < 2 else 0)
            return x * x

        assert pool.map(slow_for_small, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_map_serial_runs_inline(self):
        thread_ids = []
        WorkerPool(1).map(lambda _: thread_ids.append(threading.get_ident()), [1, 2])
        assert set(thread_ids) == {threading.get_ident()}

    def test_map_first_index_error_wins(self):
        pool = WorkerPool(4)

        def boom(x):
            raise ValueError(f"item {x}")

        with pytest.raises(ValueError, match="item 0"):
            pool.map(boom, range(4))

    def test_run_tasks_results_in_task_order(self):
        pool = WorkerPool(4)
        tasks = [lambda b, i=i: i * 10 for i in range(8)]
        assert pool.run_tasks(tasks) == [i * 10 for i in range(8)]

    def test_run_tasks_empty(self):
        assert WorkerPool(4).run_tasks([]) == []

    def test_run_tasks_serial_path_uses_parent_budget_directly(self):
        budget = EvaluationBudget(max_steps=100)
        seen = []
        WorkerPool(1).run_tasks([lambda b: seen.append(b)], budget)
        assert seen == [budget]

    def test_run_tasks_first_index_error_wins(self):
        pool = WorkerPool(4)

        def make(i):
            def task(b):
                if i in (1, 3):
                    raise RuntimeError(f"task {i}")
                return i

            return task

        with pytest.raises(RuntimeError, match="task 1"):
            pool.run_tasks([make(i) for i in range(4)])

    def test_run_tasks_rejects_process_backend(self):
        with pytest.raises(ParallelError, match="process boundary"):
            WorkerPool(2, "process").run_tasks([lambda b: 1, lambda b: 2])


class TestBudgetSplit:
    def test_children_share_the_parent_deadline(self):
        parent = EvaluationBudget(deadline=60.0, max_steps=90)
        children = parent.split(3)
        assert len(children) == 3
        assert all(c._deadline_at == parent._deadline_at for c in children)

    def test_steps_divide_evenly_over_remaining(self):
        parent = EvaluationBudget(max_steps=90)
        parent.charge(30)
        children = parent.split(3)
        assert [c.remaining_steps() for c in children] == [20, 20, 20]

    def test_unlimited_steps_stay_unlimited(self):
        children = EvaluationBudget(deadline=60.0).split(4)
        assert all(c.remaining_steps() is None for c in children)

    def test_each_child_gets_at_least_one_step(self):
        parent = EvaluationBudget(max_steps=2)
        children = parent.split(8)
        assert all(c.remaining_steps() == 1 for c in children)

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError):
            EvaluationBudget(max_steps=10).split(0)

    def test_run_tasks_charges_worker_steps_back_to_parent(self):
        parent = EvaluationBudget(max_steps=1_000)

        def task(b):
            for _ in range(10):
                b.tick("work")
            return True

        assert WorkerPool(4).run_tasks([task] * 4, parent) == [True] * 4
        assert parent.steps == 40

    def test_slice_exhaustion_raises_budget_exceeded(self):
        parent = EvaluationBudget(max_steps=8)

        def hungry(b):
            for _ in range(100):
                b.tick("work")

        with pytest.raises(BudgetExceededError):
            WorkerPool(4).run_tasks([hungry] * 4, parent)


class TestRetry:
    def test_flaky_task_recovers(self):
        flaky = _Flaky({1: 2})

        def make(i):
            def task(b):
                flaky.seen(i)
                return i * 10

            return task

        pool = WorkerPool(4)
        results = pool.run_tasks(
            [make(i) for i in range(4)], retry=_no_sleep_policy(retries=2)
        )
        assert results == [0, 10, 20, 30]
        assert flaky.calls[1] == 3  # first attempt + two retries

    def test_retry_exhausted_reraises_lowest_index(self):
        pool = WorkerPool(4)

        def doomed(b):
            raise ReproError("permanent")

        with pytest.raises(ReproError, match="permanent"):
            pool.run_tasks(
                [doomed, lambda b: 1], retry=_no_sleep_policy(retries=1)
            )

    def test_budget_exhaustion_is_not_retried(self):
        attempts = []

        def dry(b):
            attempts.append(1)
            raise BudgetExceededError("dry", reason="steps", site="t", steps=1)

        with pytest.raises(BudgetExceededError):
            WorkerPool(2).run_tasks(
                [dry, lambda b: 1], retry=_no_sleep_policy(retries=5)
            )
        assert len(attempts) == 1

    def test_serial_pool_supports_retry(self):
        flaky = _Flaky({0: 1})

        def task(b):
            flaky.seen(0)
            return "ok"

        assert WorkerPool(1).run_tasks(
            [task], retry=_no_sleep_policy()
        ) == ["ok"]
        assert flaky.calls[0] == 2

    def test_retry_counters(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            flaky = _Flaky({0: 1, 2: 5})

            def make(i):
                def task(b):
                    flaky.seen(i)
                    return i

                return task

            outcomes = WorkerPool(4).run_tasks(
                [make(i) for i in range(3)],
                retry=_no_sleep_policy(retries=2),
                on_failure="salvage",
            )
        finally:
            set_metrics(previous)
        assert [o.ok for o in outcomes] == [True, True, False]
        # Shard 0: 1 retry then recovered; shard 2: 2 retries then exhausted.
        assert registry.counter("parallel.retry.attempt") == 3
        assert registry.counter("parallel.retry.recovered") == 1
        assert registry.counter("parallel.retry.exhausted") == 1


class TestRetryBudgetAccounting:
    def test_failed_attempts_charge_back_exactly_once(self):
        # 2 tasks split a 100-step parent into 50-step shares.  Task 0
        # spends 30 steps and fails, then 20 steps and succeeds; task 1
        # spends 10.  The parent must see 30 + 20 + 10 = 60 — every
        # attempt's work charged, nothing double-counted.
        parent = EvaluationBudget(max_steps=100)
        flaky = _Flaky({0: 1})

        def task0(b):
            for _ in range(30 if flaky.calls.get(0, 0) == 0 else 20):
                b.tick("work")
            flaky.seen(0)
            return "a"

        def task1(b):
            for _ in range(10):
                b.tick("work")
            return "b"

        results = WorkerPool(2).run_tasks(
            [task0, task1], parent, retry=_no_sleep_policy()
        )
        assert results == ["a", "b"]
        assert parent.steps == 60

    def test_retry_attempt_gets_a_fresh_slice(self):
        # The share is 6 steps; the first attempt exhausts all 6 before
        # failing, so only a *fresh* slice lets the retry's 4-step run
        # succeed.  (A reused slice would raise BudgetExceededError,
        # which never retries.)
        parent = EvaluationBudget(max_steps=12)
        flaky = _Flaky({0: 1})

        def task0(b):
            first = flaky.calls.get(0, 0) == 0
            for _ in range(6 if first else 4):
                b.tick("work")
            flaky.seen(0)
            return "recovered"

        results = WorkerPool(2).run_tasks(
            [task0, lambda b: "other"], parent, retry=_no_sleep_policy()
        )
        assert results == ["recovered", "other"]
        assert parent.steps == 10  # 6 failed + 4 retried; task1 untracked

    def test_salvage_still_charges_failed_shard_work(self):
        parent = EvaluationBudget(max_steps=100)

        def doomed(b):
            for _ in range(5):
                b.tick("work")
            raise ReproError("down")

        def fine(b):
            for _ in range(7):
                b.tick("work")
            return 1

        outcomes = WorkerPool(2).run_tasks(
            [doomed, fine], parent, on_failure="salvage"
        )
        assert [o.ok for o in outcomes] == [False, True]
        assert parent.steps == 12


class TestSalvage:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="on_shard_failure"):
            WorkerPool(2).run_tasks([lambda b: 1], on_failure="ignore")

    def test_salvage_returns_outcomes_in_order(self):
        def make(i):
            def task(b):
                if i == 1:
                    raise ReproError("shard down")
                return i * 10

            return task

        outcomes = WorkerPool(4).run_tasks(
            [make(i) for i in range(4)], on_failure="salvage"
        )
        assert all(isinstance(o, ShardOutcome) for o in outcomes)
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.value for o in outcomes] == [0, None, 20, 30]
        assert isinstance(outcomes[1].error, ReproError)
        assert outcomes[1].attempts == 1

    def test_salvage_with_retries_records_attempts(self):
        def doomed(b):
            raise ReproError("down")

        outcomes = WorkerPool(2).run_tasks(
            [doomed, lambda b: 1],
            retry=_no_sleep_policy(retries=2),
            on_failure="salvage",
        )
        assert outcomes[0].attempts == 3
        assert not outcomes[0].ok
        assert outcomes[1].ok

    def test_serial_salvage(self):
        def doomed(b):
            raise ReproError("down")

        outcomes = WorkerPool(1).run_tasks(
            [lambda b: "x", doomed], on_failure="salvage"
        )
        assert [o.ok for o in outcomes] == [True, False]
        assert outcomes[0].value == "x"

    def test_keyboard_interrupt_is_never_salvaged(self):
        def interrupted(b):
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            WorkerPool(1).run_tasks(
                [interrupted, lambda b: 1], on_failure="salvage"
            )


class TestMapOutcomes:
    def test_matches_map_on_success(self):
        pool = WorkerPool(4)
        items = list(range(6))
        assert pool.map_outcomes(_square, items) == pool.map(_square, items)

    def test_thread_retry_recovers(self):
        flaky = _Flaky({2: 1})

        def fn(x):
            flaky.seen(x)
            return x + 100

        results = WorkerPool(4).map_outcomes(
            fn, range(4), retry=_no_sleep_policy()
        )
        assert results == [100, 101, 102, 103]
        assert flaky.calls[2] == 2

    def test_salvage_outcomes(self):
        def fn(x):
            if x == 1:
                raise ReproError("bad item")
            return x

        outcomes = WorkerPool(4).map_outcomes(
            fn, range(3), on_failure="salvage"
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert [o.value for o in outcomes] == [0, None, 2]


def _square(x):
    return x * x


def _process_task(x):
    """Module-level (hence picklable) process-backend work item."""
    if x < 0:
        raise BudgetExceededError(
            "child ran dry",
            reason="steps",
            site="process.test",
            steps=7,
            max_steps=7,
        )
    return x * x


class TestProcessErrorFidelity:
    def test_budget_error_survives_as_itself(self):
        outcomes = WorkerPool(2, "process").map_outcomes(
            _process_task, [3, -1], on_failure="salvage"
        )
        assert outcomes[0].ok and outcomes[0].value == 9
        error = outcomes[1].error
        assert type(error) is BudgetExceededError
        assert error.reason == "steps"
        assert error.site == "process.test"
        assert error.steps == 7

    def test_fail_fast_reraises_original_type(self):
        with pytest.raises(BudgetExceededError, match="child ran dry"):
            WorkerPool(2, "process").map_outcomes(_process_task, [-1, 2])

    def test_process_retry_reruns_in_a_child(self):
        # Deterministic failures retry and fail again — proving the retry
        # actually re-entered a worker process rather than silently
        # succeeding in the parent.
        outcomes = WorkerPool(2, "process").map_outcomes(
            _process_task,
            [-1, 4],
            retry=RetryPolicy(retries=2, retry_on=(Exception,), no_retry=()),
            on_failure="salvage",
        )
        assert outcomes[0].attempts == 3
        assert type(outcomes[0].error) is BudgetExceededError
        assert outcomes[1].ok and outcomes[1].value == 16


def _child_harness(x):
    """Run through the child-side harness of :mod:`repro.parallel.tasks`."""
    from repro.parallel.tasks import _run_in_child

    def fn(budget):
        for _ in range(x if x > 0 else 5):
            budget.tick("work")
        if x < 0:
            raise ReproError("child exploded")
        return x

    return _run_in_child(fn, (None, 100), False)


class TestRemoteAnnotations:
    def test_child_failure_carries_traceback_and_steps(self):
        outcomes = WorkerPool(2, "process").map_outcomes(
            _child_harness, [3, -1], on_failure="salvage"
        )
        ok, failed = outcomes
        assert ok.ok and ok.value == (3, 3, None)
        error = failed.error
        assert isinstance(error, ReproError)
        assert "child exploded" in error.remote_traceback
        assert "Traceback" in error.remote_traceback
        # The work done before dying is accounted and charged on join.
        assert error.remote_steps == 5
        assert failed.steps == 5


class TestMetricsMerge:
    def test_worker_counters_fold_into_parent(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            from repro.obs.metrics import active_metrics

            def task(b):
                active_metrics().inc("worker.work", 5)
                active_metrics().observe("worker.lat", 1.0)
                return True

            WorkerPool(4).run_tasks([task] * 4)
        finally:
            set_metrics(previous)
        assert registry.counter("worker.work") == 20
        assert registry.histograms["worker.lat"].count == 4

    def test_budget_ticks_land_in_worker_registry_then_parent(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            parent = EvaluationBudget(max_steps=1_000)

            def task(b):
                for _ in range(7):
                    b.tick("work")
                return True

            WorkerPool(2).run_tasks([task] * 2, parent)
        finally:
            set_metrics(previous)
        assert registry.counter("budget.ticks") == 14

    def test_no_registry_active_means_no_registry_plumbing(self):
        previous = set_metrics(None)
        try:
            assert WorkerPool(4).run_tasks([lambda b: 1] * 4) == [1] * 4
        finally:
            set_metrics(previous)
