"""The worker-pool abstraction: sharding, ordering, budget slicing,
metrics merging, and error determinism (see docs/PARALLEL.md)."""

import threading

import pytest

from repro.errors import BudgetExceededError
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.parallel import (
    BACKENDS,
    WORKERS_ENV_VAR,
    ParallelError,
    WorkerPool,
    resolve_workers,
    shard,
)
from repro.robust.budget import EvaluationBudget


class TestResolveWorkers:
    def test_explicit_argument_wins(self):
        assert resolve_workers(3, environ={WORKERS_ENV_VAR: "7"}) == 3

    def test_env_var_is_the_fallback(self):
        assert resolve_workers(None, environ={WORKERS_ENV_VAR: "4"}) == 4
        assert resolve_workers(None, environ={WORKERS_ENV_VAR: " 2 "}) == 2

    def test_default_is_serial(self):
        assert resolve_workers(None, environ={}) == 1
        assert resolve_workers(None, environ={WORKERS_ENV_VAR: ""}) == 1

    def test_rejects_non_positive_and_junk(self):
        with pytest.raises(ParallelError):
            resolve_workers(0)
        with pytest.raises(ParallelError):
            resolve_workers(-2)
        with pytest.raises(ParallelError):
            resolve_workers(None, environ={WORKERS_ENV_VAR: "many"})
        with pytest.raises(ParallelError):
            resolve_workers(None, environ={WORKERS_ENV_VAR: "0"})


class TestShard:
    def test_contiguous_order_preserving_partition(self):
        items = list(range(10))
        chunks = shard(items, 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert [x for chunk in chunks for x in chunk] == items

    def test_more_shards_than_items_drops_empties(self):
        assert shard([1, 2], 5) == [[1], [2]]
        assert shard([], 4) == []

    def test_single_shard_is_the_whole_list(self):
        assert shard([3, 1, 2], 1) == [[3, 1, 2]]

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ParallelError):
            shard([1], 0)

    def test_deterministic(self):
        items = list(range(17))
        assert shard(items, 4) == shard(items, 4)


class TestWorkerPool:
    def test_backends_constant(self):
        assert BACKENDS == ("serial", "thread", "process")

    def test_workers_one_degrades_to_serial_backend(self):
        assert WorkerPool(1, "thread").backend == "serial"
        assert WorkerPool(1, "process").backend == "serial"
        assert WorkerPool(4, "thread").backend == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParallelError):
            WorkerPool(2, "greenlet")

    def test_map_preserves_input_order(self):
        pool = WorkerPool(4)
        # Make late items finish first to prove ordering is by input, not
        # completion.
        import time

        def slow_for_small(x):
            time.sleep(0.02 if x < 2 else 0)
            return x * x

        assert pool.map(slow_for_small, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_map_serial_runs_inline(self):
        thread_ids = []
        WorkerPool(1).map(lambda _: thread_ids.append(threading.get_ident()), [1, 2])
        assert set(thread_ids) == {threading.get_ident()}

    def test_map_first_index_error_wins(self):
        pool = WorkerPool(4)

        def boom(x):
            raise ValueError(f"item {x}")

        with pytest.raises(ValueError, match="item 0"):
            pool.map(boom, range(4))

    def test_run_tasks_results_in_task_order(self):
        pool = WorkerPool(4)
        tasks = [lambda b, i=i: i * 10 for i in range(8)]
        assert pool.run_tasks(tasks) == [i * 10 for i in range(8)]

    def test_run_tasks_empty(self):
        assert WorkerPool(4).run_tasks([]) == []

    def test_run_tasks_serial_path_uses_parent_budget_directly(self):
        budget = EvaluationBudget(max_steps=100)
        seen = []
        WorkerPool(1).run_tasks([lambda b: seen.append(b)], budget)
        assert seen == [budget]

    def test_run_tasks_first_index_error_wins(self):
        pool = WorkerPool(4)

        def make(i):
            def task(b):
                if i in (1, 3):
                    raise RuntimeError(f"task {i}")
                return i

            return task

        with pytest.raises(RuntimeError, match="task 1"):
            pool.run_tasks([make(i) for i in range(4)])

    def test_run_tasks_rejects_process_backend(self):
        with pytest.raises(ParallelError, match="process boundary"):
            WorkerPool(2, "process").run_tasks([lambda b: 1, lambda b: 2])


class TestBudgetSplit:
    def test_children_share_the_parent_deadline(self):
        parent = EvaluationBudget(deadline=60.0, max_steps=90)
        children = parent.split(3)
        assert len(children) == 3
        assert all(c._deadline_at == parent._deadline_at for c in children)

    def test_steps_divide_evenly_over_remaining(self):
        parent = EvaluationBudget(max_steps=90)
        parent.charge(30)
        children = parent.split(3)
        assert [c.remaining_steps() for c in children] == [20, 20, 20]

    def test_unlimited_steps_stay_unlimited(self):
        children = EvaluationBudget(deadline=60.0).split(4)
        assert all(c.remaining_steps() is None for c in children)

    def test_each_child_gets_at_least_one_step(self):
        parent = EvaluationBudget(max_steps=2)
        children = parent.split(8)
        assert all(c.remaining_steps() == 1 for c in children)

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError):
            EvaluationBudget(max_steps=10).split(0)

    def test_run_tasks_charges_worker_steps_back_to_parent(self):
        parent = EvaluationBudget(max_steps=1_000)

        def task(b):
            for _ in range(10):
                b.tick("work")
            return True

        assert WorkerPool(4).run_tasks([task] * 4, parent) == [True] * 4
        assert parent.steps == 40

    def test_slice_exhaustion_raises_budget_exceeded(self):
        parent = EvaluationBudget(max_steps=8)

        def hungry(b):
            for _ in range(100):
                b.tick("work")

        with pytest.raises(BudgetExceededError):
            WorkerPool(4).run_tasks([hungry] * 4, parent)


class TestMetricsMerge:
    def test_worker_counters_fold_into_parent(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            from repro.obs.metrics import active_metrics

            def task(b):
                active_metrics().inc("worker.work", 5)
                active_metrics().observe("worker.lat", 1.0)
                return True

            WorkerPool(4).run_tasks([task] * 4)
        finally:
            set_metrics(previous)
        assert registry.counter("worker.work") == 20
        assert registry.histograms["worker.lat"].count == 4

    def test_budget_ticks_land_in_worker_registry_then_parent(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            parent = EvaluationBudget(max_steps=1_000)

            def task(b):
                for _ in range(7):
                    b.tick("work")
                return True

            WorkerPool(2).run_tasks([task] * 2, parent)
        finally:
            set_metrics(previous)
        assert registry.counter("budget.ticks") == 14

    def test_no_registry_active_means_no_registry_plumbing(self):
        previous = set_metrics(None)
        try:
            assert WorkerPool(4).run_tasks([lambda b: 1] * 4) == [1] * 4
        finally:
            set_metrics(previous)
