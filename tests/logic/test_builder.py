"""Tests for the construction DSL."""

import pytest

from repro.errors import FormulaError
from repro.logic.builder import (
    Rel,
    count,
    eq,
    exists,
    forall,
    num,
    rels,
    term,
    total,
    variables,
)
from repro.logic.syntax import (
    Add,
    Atom,
    CountTerm,
    Eq,
    Exists,
    Forall,
    IntTerm,
)
from repro.structures.signature import Signature


class TestVariables:
    def test_string_split(self):
        assert variables("x y z") == ("x", "y", "z")

    def test_iterable(self):
        assert variables(["a", "b"]) == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(FormulaError):
            variables("")


class TestRel:
    def test_atom_construction(self):
        E = Rel("E", 2)
        assert E("x", "y") == Atom("E", ("x", "y"))

    def test_arity_enforced(self):
        E = Rel("E", 2)
        with pytest.raises(FormulaError):
            E("x")
        with pytest.raises(FormulaError):
            E("x", "y", "z")

    def test_zero_arity(self):
        flag = Rel("Flag", 0)
        assert flag() == Atom("Flag", ())

    def test_symbol_property(self):
        assert Rel("E", 2).symbol.arity == 2

    def test_rels_from_signature(self):
        handles = rels(Signature.of(E=2, R=1))
        assert handles["E"]("x", "y") == Atom("E", ("x", "y"))
        assert handles["R"]("x") == Atom("R", ("x",))


class TestQuantifiersAndCounts:
    def test_single_variable(self):
        phi = exists("x", Eq("x", "x"))
        assert phi == Exists("x", Eq("x", "x"))

    def test_variable_list_order(self):
        phi = forall(["x", "y"], Eq("x", "y"))
        assert phi == Forall("x", Forall("y", Eq("x", "y")))

    def test_count_single_and_list(self):
        E = Rel("E", 2)
        assert count("y", E("x", "y")) == CountTerm(("y",), E("x", "y"))
        assert count(["y", "z"], E("y", "z")).variables == ("y", "z")


class TestTermHelpers:
    def test_num_and_term(self):
        assert num(5) == IntTerm(5)
        assert term(3) == IntTerm(3)
        assert term(IntTerm(2)) == IntTerm(2)

    def test_total(self):
        s = total(1, 2, 3)
        assert isinstance(s, Add)
        with pytest.raises(FormulaError):
            total()

    def test_eq_helper(self):
        assert eq("x", "y") == Eq("x", "y")
