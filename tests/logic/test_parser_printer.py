"""Parser/printer tests, including the round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.logic.parser import parse_formula, parse_term
from repro.logic.printer import pretty
from repro.logic.syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Forall,
    Implies,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Top,
)

from ..conftest import fo_formulas, foc1_formulas


class TestParseFormulas:
    def test_atoms(self):
        assert parse_formula("E(x, y)") == Atom("E", ("x", "y"))
        assert parse_formula("x = y") == Eq("x", "y")
        assert parse_formula("Flag()") == Atom("Flag", ())
        assert parse_formula("true") == Top()
        assert parse_formula("false") == Bottom()
        assert parse_formula("dist(x, y) <= 4") == DistAtom("x", "y", 4)

    def test_precedence(self):
        phi = parse_formula("E(x, y) & E(y, z) | x = z")
        assert isinstance(phi, Or)
        assert isinstance(phi.left, And)
        phi2 = parse_formula("!E(x, y) & x = y")
        assert isinstance(phi2, And)
        assert isinstance(phi2.left, Not)

    def test_implication_right_associative(self):
        phi = parse_formula("E(x, y) -> E(y, z) -> x = z")
        assert isinstance(phi, Implies)
        assert isinstance(phi.right, Implies)

    def test_quantifier_scope_extends_right(self):
        phi = parse_formula("exists x. E(x, y) & x = y")
        assert isinstance(phi, Exists)
        assert isinstance(phi.inner, And)

    def test_nested_quantifiers(self):
        phi = parse_formula("forall x. exists y. E(x, y)")
        assert phi == Forall("x", Exists("y", Atom("E", ("x", "y"))))

    def test_predicate_atom(self):
        phi = parse_formula("@eq(#(y). E(x, y), 3)")
        assert isinstance(phi, PredicateAtom)
        assert phi.predicate == "eq"
        assert phi.terms[1] == IntTerm(3)

    def test_keyword_cannot_be_variable(self):
        with pytest.raises(ParseError):
            parse_formula("exists exists. true")

    def test_junk_rejected(self):
        for bad in ["E(x,", "x =", "@", "exists x", "E(x, y) &", "(E(x, y)", "x ? y"]:
            with pytest.raises(ParseError):
                parse_formula(bad)

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("E(x, y) E(y, z)")

    def test_error_position_reported(self):
        try:
            parse_formula("E(x, y) ^ x = y")
        except ParseError as error:
            assert error.position == 8
        else:
            pytest.fail("expected a ParseError")


class TestParseTerms:
    def test_arithmetic(self):
        assert parse_term("1 + 2 * 3") == Add(IntTerm(1), Mul(IntTerm(2), IntTerm(3)))
        assert parse_term("(1 + 2) * 3") == Mul(Add(IntTerm(1), IntTerm(2)), IntTerm(3))

    def test_subtraction_desugars(self):
        assert parse_term("5 - 2") == Add(IntTerm(5), Mul(IntTerm(-1), IntTerm(2)))

    def test_unary_minus(self):
        assert parse_term("-4") == IntTerm(-4)
        t = parse_term("-#(y). E(x, y)")
        assert t == Mul(IntTerm(-1), CountTerm(("y",), Atom("E", ("x", "y"))))

    def test_counting_terms(self):
        t = parse_term("#(y, z). (E(x, y) & E(y, z))")
        assert t.variables == ("y", "z")
        assert isinstance(t.inner, And)

    def test_zero_variable_count(self):
        t = parse_term("#(). E(x, y)")
        assert t == CountTerm((), Atom("E", ("x", "y")))


class TestRoundTrip:
    CASES = [
        "exists x. forall y. (E(x, y) -> x = y)",
        "@prime(#(x). x = x + #(x, y). E(x, y))",
        "!(E(x, y) | E(y, x)) & dist(x, y) <= 3",
        "@eq(#(y). (E(x, y) & @geq1(#(z). E(y, z))), 2 * 3 - 1)",
        "E(x, y) <-> E(y, x)",
        "true & (false | x = x)",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_examples_roundtrip(self, source):
        phi = parse_formula(source)
        assert parse_formula(pretty(phi)) == phi

    @given(fo_formulas())
    @settings(max_examples=60, deadline=None)
    def test_random_fo_roundtrip(self, phi):
        assert parse_formula(pretty(phi)) == phi

    @given(foc1_formulas())
    @settings(max_examples=60, deadline=None)
    def test_random_foc1_roundtrip(self, phi):
        assert parse_formula(pretty(phi)) == phi

    def test_paper_examples_roundtrip(self):
        from repro.logic.examples import (
            example_3_2_degree_prime,
            example_3_2_prime_sum,
            phi_blue_balance,
        )

        for expr in [example_3_2_prime_sum(), example_3_2_degree_prime()]:
            assert parse_formula(pretty(expr)) == expr
        phi = phi_blue_balance("x")
        assert parse_formula(pretty(phi)) == phi


class TestParserRobustness:
    """The parser must reject junk with ParseError — never crash otherwise."""

    @given(st.text(max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_formula(text)
        except ParseError:
            pass  # rejection is the expected outcome for junk

    @given(st.text(alphabet="()@#.,=|&!+-*<> xyERtrue", max_size=30))
    @settings(max_examples=120, deadline=None)
    def test_near_miss_text_never_crashes(self, text):
        for parser in (parse_formula, parse_term):
            try:
                parser(text)
            except ParseError:
                pass
