"""Tests for NNF and prenex normal forms."""

import pytest
from hypothesis import given, settings

from repro.errors import FormulaError
from repro.logic.normalform import is_nnf, is_prenex, to_nnf, to_prenex
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.logic.syntax import free_variables

from ..conftest import fo_formulas, small_graphs


class TestNnf:
    CASES = [
        "!(E(x, y) & E(y, x))",
        "!(exists z. E(x, z))",
        "!(forall z. !E(x, z))",
        "E(x, y) -> E(y, x)",
        "E(x, y) <-> E(y, x)",
        "!!(E(x, y) | !true)",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_output_is_nnf(self, source):
        assert is_nnf(to_nnf(parse_formula(source)))

    @given(fo_formulas(), small_graphs(max_vertices=4))
    @settings(max_examples=50, deadline=None)
    def test_nnf_preserves_semantics(self, phi, structure):
        nnf = to_nnf(phi)
        assert is_nnf(nnf)
        env = {v: structure.universe_order[0] for v in free_variables(phi)}
        assert evaluate(phi, structure, env) == evaluate(nnf, structure, env)

    def test_counting_rejected(self):
        with pytest.raises(FormulaError):
            to_nnf(parse_formula("@geq1(#(y). E(x, y))"))


class TestPrenex:
    CASES = [
        "(exists z. E(x, z)) & (exists z. E(z, x))",
        "!(exists z. E(x, z)) | E(x, x)",
        "forall y. (E(x, y) -> exists z. E(y, z))",
        "(exists y. E(x, y)) <-> (forall y. E(y, x))",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_output_is_prenex(self, source):
        assert is_prenex(to_prenex(parse_formula(source)))

    @given(fo_formulas(), small_graphs(max_vertices=4))
    @settings(max_examples=50, deadline=None)
    def test_prenex_preserves_semantics(self, phi, structure):
        prenex = to_prenex(phi)
        assert is_prenex(prenex)
        env = {v: structure.universe_order[0] for v in free_variables(phi)}
        assert evaluate(phi, structure, env) == evaluate(prenex, structure, env)

    def test_free_variables_preserved(self):
        phi = parse_formula("(exists z. E(x, z)) & E(x, w)")
        assert free_variables(to_prenex(phi)) == free_variables(phi)

    def test_shared_bound_names_renamed_apart(self):
        phi = parse_formula("(exists z. E(x, z)) & (exists z. E(z, x))")
        prenex = to_prenex(phi)
        # two distinct quantifiers must remain
        from repro.logic.syntax import Exists

        count = 0
        node = prenex
        while isinstance(node, Exists):
            count += 1
            node = node.inner
        assert count == 2
