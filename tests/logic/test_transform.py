"""Tests for syntactic transformations (renaming, primitivisation,
relativization, simplification) — all checked semantically."""

import pytest
from hypothesis import given, settings

from repro.logic.builder import Rel
from repro.logic.parser import parse_formula, parse_term
from repro.logic.semantics import evaluate, satisfies
from repro.logic.syntax import (
    And,
    CountTerm,
    Eq,
    Exists,
    IntTerm,
    Not,
    free_variables,
    subexpressions,
)
from repro.logic.transform import (
    fresh_variable,
    relativize,
    rename_free,
    simplify,
    to_primitive,
)
from repro.structures.builders import graph_structure

from ..conftest import foc1_formulas, small_graphs

E = Rel("E", 2)


class TestFreshVariable:
    def test_avoids_used(self):
        assert fresh_variable("x", ["x", "x_1"]) == "x_2"
        assert fresh_variable("x", []) == "x"


class TestRenameFree:
    def test_simple_rename(self):
        phi = And(E("x", "y"), Exists("z", E("y", "z")))
        renamed = rename_free(phi, {"y": "w"})
        assert free_variables(renamed) == {"x", "w"}

    def test_bound_occurrences_untouched(self):
        phi = Exists("y", E("x", "y"))
        renamed = rename_free(phi, {"y": "w"})
        assert renamed == phi

    def test_capture_avoided_by_alpha_renaming(self):
        # renaming x -> y under exists y must alpha-rename the binder
        phi = Exists("y", E("x", "y"))
        renamed = rename_free(phi, {"x": "y"})
        assert free_variables(renamed) == {"y"}
        assert isinstance(renamed, Exists)
        assert renamed.variable != "y"

    def test_capture_avoided_in_counting_terms(self):
        term = CountTerm(("y",), E("x", "y"))
        renamed = rename_free(term, {"x": "y"})
        assert free_variables(renamed) == {"y"}
        assert renamed.variables[0] != "y"

    def test_semantics_preserved(self):
        g = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
        phi = Exists("z", And(E("x", "z"), E("z", "y")))
        renamed = rename_free(phi, {"x": "u", "y": "v"})
        for a in g.universe_order:
            for b in g.universe_order:
                assert satisfies(g, phi, {"x": a, "y": b}) == satisfies(
                    g, renamed, {"u": a, "v": b}
                )


class TestToPrimitive:
    def test_only_core_connectives_remain(self):
        phi = parse_formula("forall x. (E(x, y) <-> true) -> false")
        prim = to_primitive(phi)
        from repro.logic.syntax import Bottom as B
        from repro.logic.syntax import Forall as FA
        from repro.logic.syntax import Iff as IF
        from repro.logic.syntax import Implies as IM
        from repro.logic.syntax import Top as T

        banned = (FA, IM, IF, T, B)
        assert not any(isinstance(node, banned) for node in subexpressions(prim))

    @given(foc1_formulas(), small_graphs(max_vertices=4))
    @settings(max_examples=40, deadline=None)
    def test_primitive_equivalent(self, phi, structure):
        prim = to_primitive(phi)
        env = {v: structure.universe_order[0] for v in free_variables(phi)}
        assert evaluate(phi, structure, env) == evaluate(prim, structure, env)


class TestRelativize:
    def test_quantifiers_guarded(self):
        g = graph_structure([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)])
        # guard: vertices with degree >= 2 (i.e. 2 and 3)
        def guard(v):
            return Exists(
                f"_g1{v}",
                Exists(
                    f"_g2{v}",
                    And(
                        And(E(v, f"_g1{v}"), E(v, f"_g2{v}")),
                        Not(Eq(f"_g1{v}", f"_g2{v}")),
                    ),
                ),
            )

        phi = Exists("x", Exists("y", And(E("x", "y"), Not(Eq("x", "y")))))
        guarded = relativize(phi, guard)
        # relativized: only 2-3 edge counts among degree>=2 vertices
        assert satisfies(g, guarded)
        line = graph_structure([1, 2], [(1, 2)])
        assert satisfies(line, phi)
        assert not satisfies(line, guarded)

    def test_counting_binders_guarded(self):
        g = graph_structure([1, 2, 3], [(1, 2), (1, 3)])
        term = CountTerm(("y",), E("x", "y"))
        guarded = relativize(
            PredicateAtom_geq(term), lambda v: E(v, v), relativize_counts=True
        )
        # no self loops: guard empties the count
        assert not satisfies(g, guarded, {"x": 1})


def PredicateAtom_geq(t):
    from repro.logic.syntax import PredicateAtom

    return PredicateAtom("geq1", (t,))


class TestSimplify:
    CASES = [
        ("true & E(x, y)", "E(x, y)"),
        ("E(x, y) | false", "E(x, y)"),
        ("!!E(x, y)", "E(x, y)"),
        ("!true", "false"),
        ("false -> E(x, y)", "true"),
        ("exists z. true", "true"),
    ]

    @pytest.mark.parametrize("source,expected", CASES)
    def test_rewrites(self, source, expected):
        assert simplify(parse_formula(source)) == parse_formula(expected)

    def test_term_constant_folding(self):
        assert simplify(parse_term("2 * 3 + 1")) == IntTerm(7)
        assert simplify(parse_term("0 * #(y). E(x, y)")) == IntTerm(0)
        t = parse_term("1 * #(y). E(x, y)")
        assert simplify(t) == parse_term("#(y). E(x, y)")

    @given(foc1_formulas(), small_graphs(max_vertices=4))
    @settings(max_examples=40, deadline=None)
    def test_simplify_preserves_semantics(self, phi, structure):
        env = {v: structure.universe_order[0] for v in free_variables(phi)}
        assert evaluate(phi, structure, env) == evaluate(
            simplify(phi), structure, env
        )
