"""Tests for the machine-readable paper examples (Examples 3.2 and 5.4)."""

import pytest

from repro.core.evaluator import Foc1Evaluator
from repro.logic.examples import (
    blue_neighbour_term,
    count_phi_triangles_equal_reds,
    edges_term,
    example_3_2_degree_prime,
    example_3_2_prime_sum,
    example_5_4_query,
    nodes_term,
    out_degree_positive,
    out_degree_term,
    phi_blue_balance,
    phi_triangles_equal_reds,
    red_count_term,
    triangle_term,
)
from repro.logic.foc1 import is_foc1
from repro.logic.semantics import satisfies, term_value
from repro.structures.builders import coloured_graph_structure


@pytest.fixture
def colourful():
    """Two directed triangles sharing vertex 1; assorted colours."""
    return coloured_graph_structure(
        [1, 2, 3, 4, 5],
        [(1, 2), (2, 3), (3, 1), (1, 4), (4, 5), (5, 1)],
        red=[2],
        blue=[2, 4],
        green=[3, 5],
    )


class TestExample32:
    def test_prime_sum_counts_nodes_plus_edges(self, colourful):
        total = term_value(colourful, nodes_term()) + term_value(
            colourful, edges_term()
        )
        assert total == 5 + 6
        assert satisfies(colourful, example_3_2_prime_sum()) == (total in {11})

    def test_out_degree(self, colourful):
        assert term_value(colourful, out_degree_term("y"), {"y": 1}) == 2
        assert satisfies(colourful, out_degree_positive("y"), {"y": 1})

    def test_degree_prime_fragment_status(self):
        assert is_foc1(example_3_2_prime_sum())
        assert not is_foc1(example_3_2_degree_prime())


class TestExample54:
    def test_triangle_term(self, colourful):
        # vertex 1 sits on both directed triangles
        assert term_value(colourful, triangle_term("x"), {"x": 1}) == 2
        assert term_value(colourful, triangle_term("x"), {"x": 2}) == 1

    def test_red_count(self, colourful):
        assert term_value(colourful, red_count_term()) == 1

    def test_phi_triangles_equal_reds(self, colourful):
        # vertices on exactly 1 triangle equal the single red node count
        for vertex, expected in [(1, False), (2, True), (4, True)]:
            assert (
                satisfies(colourful, phi_triangles_equal_reds("x"), {"x": vertex})
                == expected
            )

    def test_census_term(self, colourful):
        assert term_value(colourful, count_phi_triangles_equal_reds()) == 4

    def test_blue_neighbours(self, colourful):
        assert term_value(colourful, blue_neighbour_term("x"), {"x": 1}) == 2
        assert term_value(colourful, blue_neighbour_term("x"), {"x": 3}) == 0

    def test_full_query_shape(self, colourful):
        query = example_5_4_query()
        query.validate_foc1()
        rows = Foc1Evaluator().evaluate_query(colourful, query)
        for row in rows:
            x, y, product = row
            assert satisfies(colourful, phi_blue_balance("x"), {"x": x})
            assert colourful.has_tuple("G", (y,))
            expected = term_value(
                colourful, blue_neighbour_term("x"), {"x": x}
            ) * term_value(colourful, triangle_term("y"), {"y": y})
            assert product == expected
