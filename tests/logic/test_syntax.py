"""Tests for the FOC(P) abstract syntax: free variables, size, #-depth."""

import pytest
from hypothesis import given, settings

from repro.errors import FormulaError
from repro.logic.syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Top,
    all_variables,
    conjunction,
    count_depth,
    disjunction,
    exists_block,
    expression_size,
    free_variables,
    is_ground_term,
    is_sentence,
    predicate_names,
    relation_names,
    subexpressions,
    uses_distance_atoms,
)

from ..conftest import foc1_formulas


class TestFreeVariables:
    def test_atoms(self):
        assert free_variables(Eq("x", "y")) == {"x", "y"}
        assert free_variables(Atom("E", ("x", "y"))) == {"x", "y"}
        assert free_variables(Atom("Flag", ())) == frozenset()
        assert free_variables(DistAtom("x", "y", 3)) == {"x", "y"}

    def test_quantifier_binds(self):
        phi = Exists("y", Atom("E", ("x", "y")))
        assert free_variables(phi) == {"x"}
        assert is_sentence(Exists("x", phi)) is True
        assert free_variables(Exists("x", phi)) == frozenset()

    def test_counting_term_binds(self):
        term = CountTerm(("y", "z"), Atom("E", ("x", "y")))
        assert free_variables(term) == {"x"}
        assert is_ground_term(CountTerm(("x",), Atom("R", ("x",))))

    def test_paper_example_5_4_free_vars(self):
        from repro.logic.examples import (
            phi_blue_balance,
            phi_triangles_equal_reds,
            red_count_term,
            triangle_term,
        )

        assert free_variables(red_count_term()) == frozenset()
        assert free_variables(triangle_term("x")) == {"x"}
        assert free_variables(phi_triangles_equal_reds("x")) == {"x"}
        assert free_variables(phi_blue_balance("x")) == {"x"}

    def test_arithmetic_unions(self):
        t = Add(CountTerm(("y",), Atom("E", ("x", "y"))), IntTerm(3))
        assert free_variables(t) == {"x"}


class TestValidation:
    def test_counting_term_repeated_variables_rejected(self):
        with pytest.raises(FormulaError):
            CountTerm(("y", "y"), Top())

    def test_predicate_atom_needs_terms(self):
        with pytest.raises(FormulaError):
            PredicateAtom("eq", ())

    def test_predicate_atom_coerces_ints(self):
        atom = PredicateAtom("eq", (3, IntTerm(3)))
        assert atom.terms[0] == IntTerm(3)

    def test_negative_distance_rejected(self):
        with pytest.raises(FormulaError):
            DistAtom("x", "y", -1)

    def test_int_term_rejects_bool(self):
        with pytest.raises(FormulaError):
            IntTerm(True)


class TestSugar:
    def test_boolean_operators(self):
        a, b = Atom("R", ("x",)), Atom("B", ("x",))
        assert (a & b) == And(a, b)
        assert (a | b) == Or(a, b)
        assert (~a) == Not(a)

    def test_term_arithmetic(self):
        t = CountTerm(("y",), Atom("E", ("x", "y")))
        assert (t + 1) == Add(t, IntTerm(1))
        assert (2 * t) == Mul(IntTerm(2), t)
        # s - t is s + (-1) * t, the paper's abbreviation
        assert (t - 1) == Add(t, Mul(IntTerm(-1), IntTerm(1)))

    def test_term_comparisons(self):
        t = CountTerm(("y",), Atom("E", ("x", "y")))
        assert t.geq1() == PredicateAtom("geq1", (t,))
        assert t.eq(3) == PredicateAtom("eq", (t, IntTerm(3)))
        assert t.leq(t) == PredicateAtom("leq", (t, t))


class TestStructuralMeasures:
    def test_count_depth(self):
        flat = CountTerm(("y",), Atom("E", ("x", "y")))
        assert count_depth(flat) == 1
        nested = CountTerm(("x",), PredicateAtom("geq1", (flat,)))
        assert count_depth(nested) == 2
        assert count_depth(Atom("E", ("x", "y"))) == 0

    def test_example_3_2_depths(self):
        from repro.logic.examples import (
            example_3_2_degree_prime,
            example_3_2_prime_sum,
        )

        assert count_depth(example_3_2_prime_sum()) == 1
        assert count_depth(example_3_2_degree_prime()) == 2

    def test_size_positive_and_monotone(self):
        a = Atom("E", ("x", "y"))
        assert expression_size(a) >= 1
        assert expression_size(Not(a)) > expression_size(a)
        assert expression_size(And(a, a)) > 2 * expression_size(a) - 1

    def test_subexpressions_preorder(self):
        phi = And(Atom("R", ("x",)), Not(Eq("x", "y")))
        nodes = list(subexpressions(phi))
        assert nodes[0] is phi
        assert any(isinstance(n, Eq) for n in nodes)

    def test_collectors(self):
        phi = And(
            Atom("E", ("x", "y")),
            PredicateAtom("geq1", (CountTerm(("z",), Atom("R", ("z",))),)),
        )
        assert relation_names(phi) == {"E", "R"}
        assert predicate_names(phi) == {"geq1"}
        assert all_variables(phi) == {"x", "y", "z"}
        assert not uses_distance_atoms(phi)
        assert uses_distance_atoms(DistAtom("x", "y", 1))


class TestCombinators:
    def test_conjunction_empty_is_top(self):
        assert conjunction([]) == Top()
        assert disjunction([]) == Bottom()

    def test_exists_block_order(self):
        phi = exists_block(["x", "y"], Eq("x", "y"))
        assert phi == Exists("x", Exists("y", Eq("x", "y")))

    @given(foc1_formulas())
    @settings(max_examples=30, deadline=None)
    def test_generated_formulas_have_consistent_measures(self, phi):
        assert expression_size(phi) >= 1
        assert count_depth(phi) >= 0
        assert free_variables(phi) <= all_variables(phi)
