"""Tests for the reference semantics (literal Definition 3.1)."""

import pytest
from hypothesis import given, settings

from repro.errors import ArityError, EvaluationError
from repro.logic.builder import Rel
from repro.logic.examples import (
    blue_neighbour_term,
    edges_term,
    example_3_2_degree_prime,
    example_3_2_prime_sum,
    nodes_term,
    out_degree_term,
    red_count_term,
    triangle_term,
)
from repro.logic.semantics import (
    Interpretation,
    count_solutions,
    evaluate,
    satisfies,
    solutions,
    term_value,
)
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from repro.structures.builders import (
    coloured_graph_structure,
    cycle_graph,
    graph_structure,
    path_graph,
)

from ..conftest import fo_formulas, small_graphs

E = Rel("E", 2)


@pytest.fixture
def digraph():
    """1 -> 2 -> 3, 1 -> 3 (directed)."""
    return graph_structure([1, 2, 3], [(1, 2), (2, 3), (1, 3)], symmetric=False)


class TestAtomsAndConnectives:
    def test_equality(self, digraph):
        assert satisfies(digraph, Eq("x", "y"), {"x": 1, "y": 1})
        assert not satisfies(digraph, Eq("x", "y"), {"x": 1, "y": 2})

    def test_relation_atom(self, digraph):
        assert satisfies(digraph, E("x", "y"), {"x": 1, "y": 2})
        assert not satisfies(digraph, E("x", "y"), {"x": 2, "y": 1})

    def test_boolean_semantics(self, digraph):
        phi = E("x", "y")
        env = {"x": 2, "y": 1}
        assert satisfies(digraph, Not(phi), env)
        assert satisfies(digraph, Or(phi, Top()), env)
        assert not satisfies(digraph, And(phi, Top()), env)
        assert satisfies(digraph, Implies(phi, Bottom()), env)
        assert satisfies(digraph, Iff(phi, Bottom()), env)

    def test_quantifiers(self, digraph):
        assert satisfies(digraph, Exists("y", E("x", "y")), {"x": 1})
        assert not satisfies(digraph, Exists("y", E("x", "y")), {"x": 3})
        assert not satisfies(digraph, Forall("x", Exists("y", E("x", "y"))))

    def test_distance_atom(self):
        p = path_graph(5)
        assert satisfies(p, DistAtom("x", "y", 2), {"x": 1, "y": 3})
        assert not satisfies(p, DistAtom("x", "y", 2), {"x": 1, "y": 4})

    def test_unbound_variable_raises(self, digraph):
        with pytest.raises(EvaluationError):
            satisfies(digraph, E("x", "y"), {"x": 1})

    def test_unknown_relation_raises(self, digraph):
        with pytest.raises(EvaluationError):
            satisfies(digraph, Atom("Nope", ("x",)), {"x": 1})

    def test_arity_mismatch_raises(self, digraph):
        with pytest.raises(ArityError):
            satisfies(digraph, Atom("E", ("x",)), {"x": 1})


class TestCountingTerms:
    def test_out_degree(self, digraph):
        t = out_degree_term("y")
        assert term_value(digraph, t, {"y": 1}) == 2
        assert term_value(digraph, t, {"y": 3}) == 0

    def test_nodes_and_edges(self, digraph):
        assert term_value(digraph, nodes_term()) == 3
        assert term_value(digraph, edges_term()) == 3

    def test_empty_tuple_count(self, digraph):
        t = CountTerm((), E("x", "y"))
        assert term_value(digraph, t, {"x": 1, "y": 2}) == 1
        assert term_value(digraph, t, {"x": 2, "y": 1}) == 0

    def test_arithmetic(self, digraph):
        t = nodes_term() * 2 + edges_term() - 1
        assert term_value(digraph, t) == 6 + 3 - 1

    def test_example_3_2_prime_sum(self, digraph):
        # 3 nodes + 3 edges = 6, not prime
        assert not satisfies(digraph, example_3_2_prime_sum())
        four = graph_structure([1, 2], [(1, 2), (2, 1), (1, 1)], symmetric=False)
        # 2 nodes + 3 edges = 5, prime
        assert satisfies(four, example_3_2_prime_sum())

    def test_example_3_2_degree_prime(self, digraph):
        # out-degrees: 2, 1, 0; exactly one vertex of out-degree 2 -> not
        # prime counts... vertex x with degree d such that #vertices of
        # degree d is prime: degree 1 occurs once (not prime), degree 2 once,
        # degree 0 once -> no witness.
        assert not satisfies(digraph, example_3_2_degree_prime())
        two_same = graph_structure(
            [1, 2, 3], [(1, 2), (2, 3)], symmetric=False
        )  # out-degrees 1,1,0 -> degree 1 occurs twice, 2 is prime
        assert satisfies(two_same, example_3_2_degree_prime())

    def test_shadowing(self, digraph):
        # the outer binding of y must be restored after the count
        t = CountTerm(("y",), E("x", "y"))
        phi = And(E("x", "y"), PredicateAtom_geq1(t))
        assert satisfies(digraph, phi, {"x": 1, "y": 2})


def PredicateAtom_geq1(t):
    from repro.logic.syntax import PredicateAtom

    return PredicateAtom("geq1", (t,))


class TestExample54Terms:
    def test_triangle_census(self):
        g = coloured_graph_structure(
            [1, 2, 3, 4],
            [(1, 2), (2, 3), (3, 1), (1, 4)],
            red=[4],
            blue=[2],
            green=[3],
        )
        assert term_value(g, triangle_term("x"), {"x": 1}) == 1
        assert term_value(g, triangle_term("x"), {"x": 4}) == 0
        assert term_value(g, red_count_term()) == 1
        assert term_value(g, blue_neighbour_term("x"), {"x": 1}) == 1


class TestSolutions:
    def test_solution_enumeration(self, digraph):
        got = set(solutions(digraph, E("x", "y"), ["x", "y"]))
        assert got == {(1, 2), (2, 3), (1, 3)}

    def test_count_solutions(self, digraph):
        assert count_solutions(digraph, E("x", "y"), ["x", "y"]) == 3
        assert count_solutions(digraph, Not(E("x", "y")), ["x", "y"]) == 6

    def test_unlisted_free_variable_rejected(self, digraph):
        with pytest.raises(EvaluationError):
            list(solutions(digraph, E("x", "y"), ["x"]))


class TestInterpretation:
    def test_rebind(self, digraph):
        interp = Interpretation(digraph, {"x": 1})
        rebound = interp.rebind(["x", "y"], [2, 3])
        assert rebound.assignment == {"x": 2, "y": 3}
        assert interp.assignment == {"x": 1}

    def test_assignment_outside_universe_rejected(self, digraph):
        with pytest.raises(EvaluationError):
            Interpretation(digraph, {"x": 99})


class TestCycleSanity:
    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=25, deadline=None)
    def test_de_morgan(self, structure):
        """forall x phi == not exists x not phi, semantically."""
        phi = Exists("y", E("x", "y"))
        lhs = satisfies(structure, Forall("x", phi))
        rhs = satisfies(structure, Not(Exists("x", Not(phi))))
        assert lhs == rhs

    def test_cycle_edge_count(self):
        c = cycle_graph(7)
        assert term_value(c, edges_term()) == 14


class TestCountingAlgebraicInvariants:
    """Algebraic laws of counting terms, as properties (Definition 3.1)."""

    @given(small_graphs(min_vertices=1, max_vertices=5), fo_formulas(max_depth=2))
    @settings(max_examples=30, deadline=None)
    def test_count_complement(self, structure, phi):
        """#y.phi + #y.!phi = |A| for any formula and fixed context."""
        from repro.logic.syntax import CountTerm, Not, exists_block, free_variables

        closed = exists_block(sorted(free_variables(phi) - {"y"}), phi)
        positive = CountTerm(("y",), closed)
        negative = CountTerm(("y",), Not(closed))
        total = evaluate(positive, structure) + evaluate(negative, structure)
        assert total == structure.order()

    @given(small_graphs(min_vertices=1, max_vertices=5))
    @settings(max_examples=25, deadline=None)
    def test_count_of_disjunction_inclusion_exclusion(self, structure):
        """#xy.(a|b) = #xy.a + #xy.b - #xy.(a&b)."""
        from repro.logic.syntax import And, CountTerm, Or

        E = Rel("E", 2)
        a, b = E("x", "y"), E("y", "x")
        lhs = evaluate(CountTerm(("x", "y"), Or(a, b)), structure)
        rhs = (
            evaluate(CountTerm(("x", "y"), a), structure)
            + evaluate(CountTerm(("x", "y"), b), structure)
            - evaluate(CountTerm(("x", "y"), And(a, b)), structure)
        )
        assert lhs == rhs

    @given(small_graphs(min_vertices=1, max_vertices=4))
    @settings(max_examples=25, deadline=None)
    def test_count_order_of_binders_is_product_space(self, structure):
        """#(x,y).phi = sum over a of (#y.phi)[x:=a] — Remark 6.3's identity."""
        from repro.logic.syntax import CountTerm

        E = Rel("E", 2)
        joint = evaluate(CountTerm(("x", "y"), E("x", "y")), structure)
        split = sum(
            evaluate(CountTerm(("y",), E("x", "y")), structure, {"x": a})
            for a in structure.universe_order
        )
        assert joint == split
