"""Tests for locality machinery: distance formulas, delta_G,r, scattered
sentences, and semantic r-locality."""

import pytest
from hypothesis import given, settings

from repro.errors import FormulaError
from repro.logic.builder import Rel
from repro.logic.locality import (
    ScatteredSentence,
    adjacency_formula,
    all_graphs_on,
    delta_formula,
    dist_formula,
    dist_gt_formula,
    expand_distance_atoms,
    gaifman_locality_radius,
    graph_components,
    is_connected_graph,
    is_r_local_at,
    quantifier_rank,
)
from repro.logic.semantics import satisfies
from repro.logic.syntax import And, DistAtom, Eq, Exists, Not
from repro.structures.builders import grid_graph, path_graph
from repro.structures.gaifman import connectivity_graph, distance
from repro.structures.signature import GRAPH_SIGNATURE, Signature

from ..conftest import small_graphs

E = Rel("E", 2)


class TestQuantifierRank:
    def test_basic(self):
        assert quantifier_rank(E("x", "y")) == 0
        assert quantifier_rank(Exists("x", Exists("y", E("x", "y")))) == 2
        assert (
            quantifier_rank(And(Exists("x", E("x", "y")), Exists("z", E("z", "y"))))
            == 1
        )

    def test_counting_rejected(self):
        from repro.logic.parser import parse_formula

        with pytest.raises(FormulaError):
            quantifier_rank(parse_formula("@geq1(#(y). E(x, y))"))

    def test_gaifman_radius_grows(self):
        phi0 = E("x", "y")
        phi2 = Exists("z", Exists("w", And(E("x", "z"), E("w", "y"))))
        assert gaifman_locality_radius(phi0) == 0
        assert gaifman_locality_radius(phi2) == (49 - 1) // 2


class TestDistanceFormulas:
    @given(small_graphs(min_vertices=2), )
    @settings(max_examples=30, deadline=None)
    def test_adjacency_formula(self, structure):
        phi = adjacency_formula("x", "y", GRAPH_SIGNATURE)
        nodes = list(structure.universe_order)
        adjacency = structure.adjacency()
        for a in nodes[:3]:
            for b in nodes[:3]:
                assert satisfies(structure, phi, {"x": a, "y": b}) == (
                    b in adjacency[a]
                )

    @pytest.mark.parametrize("radius", [0, 1, 2, 3, 5])
    def test_dist_formula_on_path(self, radius):
        p = path_graph(8)
        phi = dist_formula("x", "y", radius, GRAPH_SIGNATURE)
        for a in [1, 4, 8]:
            for b in [1, 2, 6, 8]:
                expected = distance(p, a, b) <= radius
                assert satisfies(p, phi, {"x": a, "y": b}) == expected

    def test_dist_gt(self):
        p = path_graph(5)
        phi = dist_gt_formula("x", "y", 2, GRAPH_SIGNATURE)
        assert satisfies(p, phi, {"x": 1, "y": 5})
        assert not satisfies(p, phi, {"x": 1, "y": 3})

    def test_expand_distance_atoms(self):
        p = path_graph(6)
        phi = And(DistAtom("x", "y", 2), Not(DistAtom("x", "y", 1)))
        expanded = expand_distance_atoms(phi, GRAPH_SIGNATURE)
        from repro.logic.syntax import subexpressions

        assert not any(isinstance(n, DistAtom) for n in subexpressions(expanded))
        for a, b in [(1, 3), (1, 2), (1, 5)]:
            assert satisfies(p, phi, {"x": a, "y": b}) == satisfies(
                p, expanded, {"x": a, "y": b}
            )

    def test_higher_arity_adjacency(self):
        sig = Signature.of(T=3)
        from repro.structures.structure import Structure

        s = Structure(sig, [1, 2, 3, 4], {"T": [(1, 2, 3)]})
        phi = adjacency_formula("x", "y", sig)
        assert satisfies(s, phi, {"x": 1, "y": 3})
        assert not satisfies(s, phi, {"x": 1, "y": 4})
        assert not satisfies(s, phi, {"x": 1, "y": 1})

    def test_empty_signature_adjacency_is_false(self):
        sig = Signature.of(R=1)
        from repro.structures.structure import Structure

        s = Structure(sig, [1, 2], {"R": [(1,)]})
        phi = adjacency_formula("x", "y", sig)
        assert not satisfies(s, phi, {"x": 1, "y": 2})


class TestPatternGraphs:
    def test_all_graphs_on(self):
        assert len(all_graphs_on(1)) == 1
        assert len(all_graphs_on(2)) == 2
        assert len(all_graphs_on(3)) == 8
        assert len(all_graphs_on(4)) == 64

    def test_components_and_connectivity(self):
        edges = frozenset({(1, 2), (3, 4)})
        comps = graph_components(4, edges)
        assert sorted(map(sorted, comps)) == [[1, 2], [3, 4]]
        assert not is_connected_graph(4, edges)
        assert is_connected_graph(3, frozenset({(1, 2), (2, 3)}))

    @given(small_graphs(min_vertices=3, max_vertices=6))
    @settings(max_examples=25, deadline=None)
    def test_delta_formula_matches_connectivity_graph(self, structure):
        nodes = list(structure.universe_order)
        tup = (nodes[0], nodes[-1], nodes[len(nodes) // 2])
        radius = 1
        actual_edges = connectivity_graph(structure, tup, radius)
        phi = delta_formula(("y1", "y2", "y3"), actual_edges, radius)
        env = {"y1": tup[0], "y2": tup[1], "y3": tup[2]}
        assert satisfies(structure, phi, env)
        # a wrong pattern must be rejected
        for other in all_graphs_on(3):
            if other != actual_edges:
                wrong = delta_formula(("y1", "y2", "y3"), other, radius)
                assert not satisfies(structure, wrong, env)

    def test_delta_edge_out_of_range(self):
        with pytest.raises(FormulaError):
            delta_formula(("y1", "y2"), [(1, 3)], 1)


class TestSemanticLocality:
    def test_quantifier_free_is_0_local(self, sparse20):
        phi = And(E("x", "y"), Not(Eq("x", "y")))
        nodes = list(sparse20.universe_order)
        for a, b in [(nodes[0], nodes[1]), (nodes[2], nodes[5])]:
            assert is_r_local_at(sparse20, phi, ["x", "y"], [a, b], 0)

    def test_degree_formula_is_1_local(self, sparse20):
        phi = Exists("z", And(E("x", "z"), Not(Eq("z", "y"))))
        nodes = list(sparse20.universe_order)
        for a, b in [(nodes[0], nodes[1]), (nodes[3], nodes[7])]:
            assert is_r_local_at(sparse20, phi, ["x", "y"], [a, b], 1)

    def test_non_local_formula_detected(self):
        # "there exists some edge" is not 0-local around x
        p = path_graph(6)
        phi = Exists("u", Exists("v", E("u", "v")))
        assert not is_r_local_at(p, phi, ["x"], [1], 0)


class TestScatteredSentences:
    def test_build_and_naive_agree(self):
        p = path_graph(9)
        sentence = ScatteredSentence(
            count=2, min_distance=2, variable="y", psi=Exists("z", E("y", "z"))
        )
        assert satisfies(p, sentence.build())
        assert sentence.holds_in(p)

    def test_witnesses_are_scattered(self):
        g = grid_graph(4, 4)
        sentence = ScatteredSentence(
            count=3, min_distance=2, variable="y", psi=Eq("y", "y")
        )
        witnesses = sentence.witnesses(g)
        assert witnesses is not None
        for i, a in enumerate(witnesses):
            for b in witnesses[i + 1 :]:
                assert distance(g, a, b) > 2

    def test_unsatisfiable(self):
        p = path_graph(3)
        sentence = ScatteredSentence(
            count=3, min_distance=2, variable="y", psi=Eq("y", "y")
        )
        assert sentence.witnesses(p) is None
        assert not satisfies(p, sentence.build())

    @given(small_graphs(min_vertices=2, max_vertices=6))
    @settings(max_examples=30, deadline=None)
    def test_matches_naive_semantics(self, structure):
        sentence = ScatteredSentence(
            count=2, min_distance=1, variable="y", psi=Exists("z", E("y", "z"))
        )
        assert sentence.holds_in(structure) == satisfies(structure, sentence.build())

    def test_extra_free_variable_rejected(self):
        with pytest.raises(FormulaError):
            ScatteredSentence(count=1, min_distance=0, variable="y", psi=E("y", "z"))
