"""Tests for the FOC1(P) fragment check (Definition 5.1, rule 4')."""

import pytest
from hypothesis import given, settings

from repro.errors import FragmentError
from repro.logic.builder import Rel, count
from repro.logic.examples import (
    example_3_2_degree_prime,
    example_3_2_prime_sum,
    out_degree_positive,
    phi_blue_balance,
)
from repro.logic.foc1 import (
    assert_foc1,
    foc1_violations,
    fragment_summary,
    is_foc1,
    is_plain_fo,
    max_counting_width,
)
from repro.logic.parser import parse_formula
from repro.logic.syntax import PredicateAtom

from ..conftest import fo_formulas, foc1_formulas

E = Rel("E", 2)


class TestMembership:
    def test_paper_examples(self):
        # "The first two formulas of Example 3.2 are in FOC1(P); the last
        # formula of Example 3.2 [...] is not."
        assert is_foc1(example_3_2_prime_sum())
        assert is_foc1(out_degree_positive())
        assert not is_foc1(example_3_2_degree_prime())

    def test_example_5_4_is_foc1(self):
        assert is_foc1(phi_blue_balance("x"))

    def test_psi_E_from_theorem_4_1_is_not_foc1(self):
        from repro.hardness.tree_reduction import psi_edge

        assert not is_foc1(psi_edge("x", "xp"))

    def test_two_ground_terms_fine(self):
        phi = parse_formula("@eq(#(x). R(x), #(y). B(y))")
        assert is_foc1(phi)

    def test_one_shared_variable_fine(self):
        phi = parse_formula("@eq(#(y). E(x, y), #(z). E(z, x))")
        assert is_foc1(phi)

    def test_two_distinct_variables_rejected(self):
        phi = parse_formula("@eq(#(z). E(x, z), #(z). E(y, z))")
        assert not is_foc1(phi)
        violations = foc1_violations(phi)
        assert len(violations) == 1
        assert violations[0].variables == {"x", "y"}
        with pytest.raises(FragmentError):
            assert_foc1(phi)

    def test_violation_nested_in_count(self):
        inner = parse_formula("@eq(#(z). E(x, z), #(z). E(y, z))")
        outer = PredicateAtom("geq1", (count(["x", "y"], inner),))
        assert not is_foc1(outer)

    @given(fo_formulas())
    @settings(max_examples=30, deadline=None)
    def test_fo_always_foc1(self, phi):
        assert is_plain_fo(phi)
        assert is_foc1(phi)

    @given(foc1_formulas())
    @settings(max_examples=40, deadline=None)
    def test_generator_respects_fragment(self, phi):
        assert is_foc1(phi)


class TestAnalysis:
    def test_max_counting_width(self):
        phi = parse_formula("@geq1(#(y, z). (E(x, y) & E(y, z)))")
        # 2 bound + 1 free = width 3 in the cl-term sense
        assert max_counting_width(phi) == 3
        assert max_counting_width(parse_formula("E(x, y)")) == 0

    def test_fragment_summary(self):
        report = fragment_summary(example_3_2_degree_prime())
        assert report["is_foc1"] is False
        assert report["is_fo"] is False
        assert report["violations"] == 1
        assert report["count_depth"] == 2
        report_fo = fragment_summary(parse_formula("exists x. E(x, y)"))
        assert report_fo["is_fo"] is True and report_fo["is_foc1"] is True
