"""Tests for numerical predicate collections (the P-oracle)."""

import pytest

from repro.errors import PredicateError
from repro.logic.predicates import (
    EQ,
    GEQ1,
    PRIME,
    NumericalPredicate,
    PredicateCollection,
    standard_collection,
)


class TestPredicates:
    def test_geq1(self):
        assert GEQ1.holds((1,)) and GEQ1.holds((5,))
        assert not GEQ1.holds((0,)) and not GEQ1.holds((-2,))

    def test_eq(self):
        assert EQ.holds((3, 3)) and not EQ.holds((3, 4))

    def test_prime_semantics(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 97}
        for n in range(-5, 100):
            assert PRIME.holds((n,)) == (n in primes or (n > 23 and _slow_prime(n)))

    def test_arity_validation(self):
        with pytest.raises(PredicateError):
            NumericalPredicate("bad", 0, lambda v: True)
        with pytest.raises(PredicateError):
            EQ.holds((1,))


def _slow_prime(n):
    return n > 1 and all(n % d for d in range(2, n))


class TestCollection:
    def test_standard_contains_paper_basics(self):
        collection = standard_collection()
        for name in ("geq1", "eq", "leq", "prime"):
            assert name in collection

    def test_geq1_required(self):
        with pytest.raises(PredicateError):
            PredicateCollection([EQ])
        # but can be waived explicitly
        PredicateCollection([EQ], require_geq1=False)

    def test_duplicate_names_rejected(self):
        with pytest.raises(PredicateError):
            PredicateCollection([GEQ1, NumericalPredicate("geq1", 1, lambda v: True)])

    def test_oracle_counting(self):
        collection = standard_collection()
        assert collection.oracle_calls == 0
        collection.query("eq", (1, 1))
        collection.query("geq1", (0,))
        assert collection.oracle_calls == 2
        collection.reset_counter()
        assert collection.oracle_calls == 0

    def test_unknown_predicate(self):
        with pytest.raises(PredicateError):
            standard_collection().query("nope", (1,))

    def test_extended(self):
        custom = NumericalPredicate("big", 1, lambda v: v[0] > 100)
        collection = standard_collection().extended(custom)
        assert collection.query("big", (101,))
        assert "big" not in standard_collection()

    def test_iteration_sorted(self):
        names = [p.name for p in standard_collection()]
        assert names == sorted(names)
