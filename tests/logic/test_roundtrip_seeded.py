"""Seeded parser <-> printer round-trip property tests.

``parse(pretty(e)) == e`` over random FOC1(P) expressions drawn from the
*full* concrete grammar: every formula connective (including ``->`` and
``<->``, whose right-associativity stresses the printer's parenthesis
placement), distance atoms, numerical predicate atoms, and the whole term
algebra — integer literals, ``+``/``*`` with their precedence, and
counting terms with one- and two-variable binders.

Plain ``random.Random(seed)`` (not hypothesis) so each case is a fixed,
individually re-runnable pytest id, matching the convention of
``tests/core/test_differential.py``.
"""

import random

import pytest

from repro.logic.parser import parse_formula, parse_term
from repro.logic.printer import pretty
from repro.logic.syntax import (
    Add,
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    IntTerm,
    Mul,
    Not,
    Or,
    PredicateAtom,
    Top,
    free_variables,
)

VARS = ("x", "y", "z", "w")
PREDICATES = {"geq1": 1, "eq": 2, "leq": 2, "even": 1, "prime": 1}


def _random_term(rng: random.Random, depth: int):
    """A random counting term; covers +, *, literals, and #-binders."""
    if depth == 0 or rng.random() < 0.3:
        return IntTerm(rng.randint(-3, 9))
    choice = rng.randint(0, 2)
    if choice == 0:
        return Add(_random_term(rng, depth - 1), _random_term(rng, depth - 1))
    if choice == 1:
        return Mul(_random_term(rng, depth - 1), _random_term(rng, depth - 1))
    bound = rng.sample(VARS, rng.randint(1, 2))
    return CountTerm(tuple(bound), _random_formula(rng, depth - 1, predicates=False))


def _random_formula(rng: random.Random, depth: int, predicates: bool = True):
    """A random formula over {E/2}; every connective of the grammar."""
    if depth == 0:
        leaves = [
            lambda: Eq(rng.choice(VARS), rng.choice(VARS)),
            lambda: Atom("E", (rng.choice(VARS), rng.choice(VARS))),
            lambda: DistAtom(rng.choice(VARS), rng.choice(VARS), rng.randint(0, 5)),
            lambda: Top(),
            lambda: Bottom(),
        ]
        return rng.choice(leaves)()
    choice = rng.randint(0, 7 if predicates else 6)
    if choice == 0:
        return _random_formula(rng, 0)
    if choice == 1:
        return Not(_random_formula(rng, depth - 1, predicates))
    if choice == 2:
        return And(
            _random_formula(rng, depth - 1, predicates),
            _random_formula(rng, depth - 1, predicates),
        )
    if choice == 3:
        return Or(
            _random_formula(rng, depth - 1, predicates),
            _random_formula(rng, depth - 1, predicates),
        )
    if choice == 4:
        return Implies(
            _random_formula(rng, depth - 1, predicates),
            _random_formula(rng, depth - 1, predicates),
        )
    if choice == 5:
        return Iff(
            _random_formula(rng, depth - 1, predicates),
            _random_formula(rng, depth - 1, predicates),
        )
    if choice == 6:
        quantifier = Exists if rng.random() < 0.5 else Forall
        return quantifier(rng.choice(VARS), _random_formula(rng, depth - 1, predicates))
    name = rng.choice(sorted(PREDICATES))
    terms = tuple(_random_term(rng, depth - 1) for _ in range(PREDICATES[name]))
    return PredicateAtom(name, terms)


class TestSeededRoundTrip:
    @pytest.mark.parametrize("seed", range(150))
    def test_formula_roundtrip(self, seed):
        rng = random.Random(seed)
        phi = _random_formula(rng, rng.randint(1, 4))
        assert parse_formula(pretty(phi)) == phi

    @pytest.mark.parametrize("seed", range(100))
    def test_term_roundtrip(self, seed):
        rng = random.Random(1000 + seed)
        term = _random_term(rng, rng.randint(1, 4))
        assert parse_term(pretty(term)) == term

    @pytest.mark.parametrize("seed", range(50))
    def test_roundtrip_preserves_free_variables(self, seed):
        rng = random.Random(2000 + seed)
        phi = _random_formula(rng, rng.randint(1, 3))
        assert free_variables(parse_formula(pretty(phi))) == free_variables(phi)


class TestPrecedenceCorners:
    """Hand-picked shapes where one missing parenthesis flips the AST."""

    CASES = [
        # right-nested And/Or need parens (left-associative parse)
        And(Atom("E", ("x", "y")), And(Atom("E", ("y", "z")), Eq("x", "z"))),
        Or(Eq("x", "y"), Or(Eq("y", "z"), Eq("x", "z"))),
        # left-nested Implies/Iff need parens (right-associative parse)
        Implies(Implies(Eq("x", "y"), Eq("y", "z")), Eq("x", "z")),
        Iff(Iff(Top(), Bottom()), Top()),
        # mixed precedence: & binds tighter than |, both tighter than ->
        Or(And(Eq("x", "y"), Eq("y", "z")), Eq("x", "z")),
        And(Or(Eq("x", "y"), Eq("y", "z")), Eq("x", "z")),
        Implies(Or(Eq("x", "y"), Eq("y", "z")), And(Eq("x", "z"), Top())),
        # negation scoping over a binary connective
        Not(And(Atom("E", ("x", "y")), Eq("x", "y"))),
        # quantifier bodies extend maximally to the right
        And(Exists("x", Atom("E", ("x", "x"))), Eq("y", "y")),
        Forall("x", Or(Atom("E", ("x", "x")), Eq("x", "x"))),
    ]

    TERM_CASES = [
        # * binds tighter than +; right-nested sums/products need parens
        Mul(Add(IntTerm(1), IntTerm(2)), IntTerm(3)),
        Add(IntTerm(1), Mul(IntTerm(2), IntTerm(3))),
        Add(IntTerm(1), Add(IntTerm(2), IntTerm(3))),
        Mul(IntTerm(2), Mul(IntTerm(3), IntTerm(4))),
        # negative literals inside a product
        Mul(IntTerm(-2), IntTerm(3)),
        Mul(IntTerm(3), IntTerm(-2)),
        # the s - t sugar (Add of a (-1)-scaled right operand)
        Add(IntTerm(5), Mul(IntTerm(-1), IntTerm(2))),
        # counting-term binders: one and two variables, complex bodies
        CountTerm(("y",), Atom("E", ("x", "y"))),
        CountTerm(("y", "z"), And(Atom("E", ("x", "y")), Atom("E", ("y", "z")))),
        CountTerm(("y",), Exists("z", Or(Atom("E", ("y", "z")), Eq("y", "z")))),
        # a predicate atom nested through the term algebra
        Add(
            CountTerm(("y",), PredicateAtom("geq1", (CountTerm(("z",), Atom("E", ("y", "z"))),))),
            IntTerm(1),
        ),
    ]

    @pytest.mark.parametrize("phi", CASES, ids=[pretty(c) for c in CASES])
    def test_formula_corner(self, phi):
        assert parse_formula(pretty(phi)) == phi

    @pytest.mark.parametrize("term", TERM_CASES, ids=[pretty(c) for c in TERM_CASES])
    def test_term_corner(self, term):
        assert parse_term(pretty(term)) == term
