"""Interning edge cases: mixed-type universes, duplicate collapse, and id
stability across ``with_tuple()`` derivation chains."""

import pytest

from repro.errors import UniverseError
from repro.structures import ElementInterner, Signature, Structure
from repro.structures.builders import graph_structure


class TestElementInterner:
    def test_ids_follow_universe_order(self):
        interner = ElementInterner(["c", "a", "b"])
        assert [interner.id_of(e) for e in ("c", "a", "b")] == [0, 1, 2]
        assert interner.elements == ("c", "a", "b")

    def test_duplicates_collapse_onto_first_occurrence(self):
        interner = ElementInterner(["x", "y", "x", "z", "y"])
        assert interner.elements == ("x", "y", "z")
        assert interner.id_of("x") == 0
        assert interner.id_of("z") == 2

    def test_mixed_type_universe(self):
        # Sorting raw mixed-type elements would raise TypeError; sorting
        # their ids must not, and must reproduce universe order.
        universe = ["b", 3, (1, 2), "a", 0]
        interner = ElementInterner(universe)
        ids = sorted(interner.ids(universe))
        assert interner.elements_of(ids) == universe

    def test_tuple_elements(self):
        interner = ElementInterner([(1, 2), (2, 1), (1, 1)])
        assert interner.id_of((2, 1)) == 1
        assert (1, 1) in interner
        assert (3, 3) not in interner

    def test_foreign_element_raises(self):
        interner = ElementInterner([1, 2])
        with pytest.raises(UniverseError):
            interner.id_of(99)
        with pytest.raises(UniverseError):
            interner.ids([1, 99])
        assert interner.get(99) is None

    def test_empty_universe_raises(self):
        with pytest.raises(UniverseError):
            ElementInterner([])

    def test_len_and_iteration(self):
        interner = ElementInterner(["a", "b"])
        assert len(interner) == 2
        assert interner.n == 2
        assert list(interner) == ["a", "b"]

    def test_batch_roundtrip_preserves_order_and_duplicates(self):
        interner = ElementInterner(["p", "q", "r"])
        ids = interner.ids(["r", "p", "r"])
        assert ids == [2, 0, 2]
        assert interner.elements_of(ids) == ["r", "p", "r"]


class TestStructureInterning:
    def test_interner_matches_universe_order(self):
        structure = graph_structure([5, 1, 3], [(5, 1)])
        interner = structure.interner()
        assert interner.elements == structure.universe_order

    def test_interner_cached(self):
        structure = graph_structure([1, 2], [(1, 2)])
        assert structure.interner() is structure.interner()

    def test_id_stability_across_with_tuple_chain(self):
        structure = graph_structure([1, 2, 3, 4], [(1, 2)])
        base = structure.interner()
        derived = structure.with_tuple("E", (2, 3))
        derived = derived.with_tuple("E", (3, 4))
        derived = derived.with_tuple("E", (1, 2), present=False)
        assert derived.interner() is base
        for element in structure.universe_order:
            assert derived.interner().id_of(element) == base.id_of(element)

    def test_interner_survives_invalidate_caches(self):
        structure = graph_structure([1, 2], [(1, 2)])
        interner = structure.interner()
        columnar = structure.columnar()
        structure.invalidate_caches()
        assert structure.interner() is interner
        assert structure.columnar() is not columnar

    def test_with_tuple_gets_fresh_columnar_view(self):
        structure = graph_structure([1, 2, 3], [(1, 2)])
        parent_view = structure.columnar()
        derived = structure.with_tuple("E", (2, 3))
        derived_view = derived.columnar()
        assert derived_view is not parent_view
        # Parent's view still answers for the parent's relations; the
        # derived one sees the single inserted (directed) tuple.
        assert parent_view.relation("E").row_count == 2  # (1,2) both ways
        assert derived_view.relation("E").row_count == 3

    def test_pickled_structure_reinterns_identically(self):
        import pickle

        structure = graph_structure(["b", "a", "c"], [("b", "a")])
        structure.columnar()  # populate caches on the sending side
        clone = pickle.loads(pickle.dumps(structure))
        assert clone == structure
        assert clone.universe_order == structure.universe_order
        assert clone.interner().elements == structure.interner().elements

    def test_non_hashable_free_api_unchanged(self):
        # Interning is transparent: the element-space API still serves
        # arbitrary hashable objects.
        sig = Signature.of(R=1)
        structure = Structure(sig, [("x", 1), "y"], {"R": [(("x", 1),)]})
        assert structure.has_tuple("R", (("x", 1),))
        assert structure.interner().id_of("y") == 1
