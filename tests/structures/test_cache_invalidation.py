"""Regression tests for the Structure cache contract.

The stale-cache hazard: adjacency() and index() are lazy caches on an
immutable structure.  A query warms them; an update that mutated the
relations in place (or any derivation that leaked the parent's caches into
a structure with *different* relational content) would make the next query
read derived data for the old relations.  ``with_tuple`` must therefore
give the derived structure fresh-or-still-valid caches, and
``invalidate_caches`` must reset a structure whose internals were mutated.
"""

import pytest

from repro.errors import ArityError, SignatureError, UniverseError
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def sig():
    return Signature.of(E=2, R=1)


@pytest.fixture
def path(sig):
    # 1 - 2 - 3 - 4, plus a unary mark on 1.
    return Structure(
        sig,
        [1, 2, 3, 4],
        {"E": [(1, 2), (2, 3), (3, 4)], "R": [(1,)]},
    )


class TestWithTupleDerivation:
    def test_query_update_query_sees_the_new_edge(self, path):
        # Query (warms both caches) ...
        assert 3 not in path.adjacency()[1]
        assert path.index("E", 0).get(1) == ((1, 2),)
        # ... update ...
        derived = path.with_tuple("E", (1, 3))
        # ... query again: the derived structure answers for the new content.
        assert 3 in derived.adjacency()[1]
        assert 1 in derived.adjacency()[3]
        assert sorted(derived.index("E", 0)[1]) == [(1, 2), (1, 3)]
        assert derived.has_tuple("E", (1, 3))

    def test_deletion_recomputes_adjacency(self, path):
        path.adjacency()  # warm
        derived = path.with_tuple("E", (2, 3), present=False)
        assert 3 not in derived.adjacency()[2]
        assert 2 not in derived.adjacency()[3]
        # 1-2 and 3-4 survive.
        assert 2 in derived.adjacency()[1]
        assert 4 in derived.adjacency()[3]

    def test_deletion_keeps_edges_witnessed_elsewhere(self, sig):
        # Two tuples witness the same Gaifman edge; deleting one keeps it.
        s = Structure(sig, [1, 2], {"E": [(1, 2), (2, 1)]})
        s.adjacency()
        derived = s.with_tuple("E", (1, 2), present=False)
        assert 2 in derived.adjacency()[1]

    def test_parent_is_untouched(self, path):
        before_adj = path.adjacency()
        before_idx = path.index("E", 0)
        derived = path.with_tuple("E", (1, 4))
        assert derived is not path
        assert path.adjacency() == before_adj
        assert path.index("E", 0) == before_idx
        assert not path.has_tuple("E", (1, 4))
        assert 4 not in path.adjacency()[1]

    def test_untouched_relation_index_is_shared(self, path):
        r_index = path.index("R", 0)
        derived = path.with_tuple("E", (1, 4))
        assert derived.index("R", 0) is r_index

    def test_touched_relation_index_is_not_shared(self, path):
        e_index = path.index("E", 0)
        derived = path.with_tuple("E", (1, 4))
        assert derived.index("E", 0) is not e_index

    def test_noop_update_returns_self(self, path):
        assert path.with_tuple("E", (1, 2)) is path
        assert path.with_tuple("E", (1, 4), present=False) is path

    def test_size_and_order_bookkeeping(self, path):
        derived = path.with_tuple("E", (1, 4))
        assert derived.order() == path.order()
        assert derived.size() == path.size() + 1
        assert derived.with_tuple("E", (1, 4), present=False).size() == path.size()

    def test_unary_insert_shares_adjacency(self, path):
        adjacency = path.adjacency()
        derived = path.with_tuple("R", (3,))
        assert derived.adjacency() is adjacency

    def test_cold_parent_builds_fresh(self, path):
        # No caches warmed on the parent: the derived structure still
        # answers correctly (nothing to share, everything lazy).
        derived = path.with_tuple("E", (1, 3))
        assert 3 in derived.adjacency()[1]

    def test_validates_the_delta(self, path):
        with pytest.raises(ArityError):
            path.with_tuple("E", (1,))
        with pytest.raises(UniverseError):
            path.with_tuple("E", (1, 99))
        with pytest.raises(SignatureError):
            path.with_tuple("Nope", (1, 2))

    def test_extensional_equality_with_full_rebuild(self, path, sig):
        derived = path.with_tuple("E", (1, 3))
        rebuilt = Structure(
            sig,
            [1, 2, 3, 4],
            {"E": [(1, 2), (2, 3), (3, 4), (1, 3)], "R": [(1,)]},
        )
        assert derived == rebuilt
        assert hash(derived) == hash(rebuilt)
        assert derived.adjacency() == rebuilt.adjacency()
        assert derived.index("E", 1) == rebuilt.index("E", 1)


class TestInvalidateCaches:
    def test_stale_caches_after_internal_mutation(self, path):
        """The regression scenario: mutate internals, observe staleness,
        then invalidate_caches() repairs it."""
        path.adjacency()
        path.index("E", 0)
        symbol = path.signature["E"]
        path._relations[symbol] = path._relations[symbol] | {(1, 4)}
        # The caches are now stale — this is exactly the hazard.
        assert 4 not in path.adjacency()[1]
        assert (1, 4) not in path.index("E", 0).get(1, ())
        path.invalidate_caches()
        assert 4 in path.adjacency()[1]
        assert (1, 4) in path.index("E", 0)[1]

    def test_idempotent_on_cold_structure(self, path):
        path.invalidate_caches()
        path.invalidate_caches()
        assert 2 in path.adjacency()[1]
