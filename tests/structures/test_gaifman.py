"""Tests for Gaifman-graph locality, cross-checked against networkx."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.errors import UniverseError
from repro.structures.builders import graph_structure, grid_graph, path_graph
from repro.structures.gaifman import (
    ball,
    connected_components,
    connectivity_graph,
    distance,
    distances_from,
    induced,
    is_connected,
    is_tuple_connected,
    neighbourhood,
    radius_of_set,
    tuple_components,
    tuple_distance,
)

from ..conftest import small_graphs


def _to_networkx(structure):
    g = nx.Graph()
    g.add_nodes_from(structure.universe_order)
    for a, neighbours in structure.adjacency().items():
        for b in neighbours:
            g.add_edge(a, b)
    return g


class TestDistance:
    def test_path_distances(self, path5):
        assert distance(path5, 1, 1) == 0
        assert distance(path5, 1, 2) == 1
        assert distance(path5, 1, 5) == 4

    def test_unreachable_is_infinite(self):
        s = graph_structure([1, 2, 3], [(1, 2)])
        assert distance(s, 1, 3) == math.inf

    def test_unknown_element_rejected(self, path5):
        with pytest.raises(UniverseError):
            distance(path5, 1, 99)

    @given(small_graphs(min_vertices=2))
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, structure):
        g = _to_networkx(structure)
        nodes = list(structure.universe_order)
        source, target = nodes[0], nodes[-1]
        ours = distance(structure, source, target)
        try:
            theirs = nx.shortest_path_length(g, source, target)
        except nx.NetworkXNoPath:
            theirs = math.inf
        assert ours == theirs

    def test_tuple_distance_is_minimum(self, path5):
        assert tuple_distance(path5, (1, 5), 4) == 1
        assert tuple_distance(path5, (1, 5), 3) == 2
        assert tuple_distance(path5, (3,), 3) == 0


class TestBallsAndNeighbourhoods:
    def test_ball_on_path(self, path5):
        assert ball(path5, [3], 1) == frozenset({2, 3, 4})
        assert ball(path5, [3], 0) == frozenset({3})
        assert ball(path5, [1, 5], 1) == frozenset({1, 2, 4, 5})

    def test_ball_negative_radius_rejected(self, path5):
        with pytest.raises(ValueError):
            ball(path5, [1], -1)

    def test_neighbourhood_is_induced(self, path5):
        sub = neighbourhood(path5, [3], 1)
        assert set(sub.universe) == {2, 3, 4}
        assert sub.has_tuple("E", (2, 3))
        assert not sub.has_tuple("E", (1, 2))

    def test_multi_source_distances(self, path5):
        dist = distances_from(path5, [1, 5])
        assert dist[3] == 2
        assert dist[2] == 1

    def test_radius_limited_distances(self, path5):
        dist = distances_from(path5, [1], radius=2)
        assert set(dist) == {1, 2, 3}


class TestComponents:
    def test_connected_components(self):
        s = graph_structure([1, 2, 3, 4, 5], [(1, 2), (3, 4)])
        comps = connected_components(s)
        assert sorted(map(sorted, comps)) == [[1, 2], [3, 4], [5]]
        assert not is_connected(s)
        assert is_connected(path_graph(4))

    def test_induced_rejects_empty_or_foreign(self, path5):
        with pytest.raises(UniverseError):
            induced(path5, [])
        with pytest.raises(UniverseError):
            induced(path5, [99])


class TestTupleConnectivity:
    def test_connectivity_graph_on_path(self, path5):
        # positions: 1->vertex1, 2->vertex2, 3->vertex5
        edges = connectivity_graph(path5, (1, 2, 5), 1)
        assert edges == frozenset({(1, 2)})
        edges2 = connectivity_graph(path5, (1, 2, 5), 3)
        assert edges2 == frozenset({(1, 2), (2, 3)})

    def test_repeated_elements_are_linked(self, path5):
        edges = connectivity_graph(path5, (2, 2), 0)
        assert edges == frozenset({(1, 2)})

    def test_tuple_components(self, path5):
        comps = tuple_components(path5, (1, 2, 5), 1)
        assert sorted(map(sorted, comps)) == [[1, 2], [3]]
        assert not is_tuple_connected(path5, (1, 2, 5), 1)
        assert is_tuple_connected(path5, (1, 2, 5), 4)

    @given(small_graphs(min_vertices=3))
    @settings(max_examples=30, deadline=None)
    def test_lemma_6_1_two_elements(self, structure):
        """Lemma 6.1: N_r(a1,a2) connected iff dist(a1,a2) <= 2r+1."""
        nodes = list(structure.universe_order)
        a1, a2 = nodes[0], nodes[-1]
        r = 1
        region = ball(structure, [a1, a2], r)
        connected = is_connected(induced(structure, region))
        expected = distance(structure, a1, a2) <= 2 * r + 1
        assert connected == expected


class TestRadius:
    def test_radius_of_path_set(self, path5):
        assert radius_of_set(path5, frozenset({1, 2, 3})) == 1
        assert radius_of_set(path5, frozenset({1, 2, 3, 4, 5})) == 2

    def test_radius_of_disconnected_set_is_infinite(self):
        s = graph_structure([1, 2, 3], [(1, 2)])
        assert radius_of_set(s, frozenset({1, 3})) == math.inf

    def test_grid_ball_radius(self):
        g = grid_graph(5, 5)
        centre = (2, 2)
        region = ball(g, [centre], 2)
        assert radius_of_set(g, region) <= 2
