"""Columnar kernels against the element-space ground truth: CSR adjacency,
BFS balls/distances, bitsets, sorted-array kernels, per-position indexes."""

import math
import random
from array import array

import pytest

from repro.errors import ArityError
from repro.structures import (
    Signature,
    Structure,
    bitset_ids,
    bitset_of,
    intersect_sorted,
    union_sorted,
)
from repro.structures.builders import (
    complete_graph,
    graph_structure,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.structures.gaifman import distances_from


def _random_graph(seed: int, n: int = 14) -> Structure:
    rng = random.Random(seed)
    vertices = list(range(1, n + 1))
    edges = [
        (u, v) for u in vertices for v in vertices if u < v and rng.random() < 0.18
    ]
    return graph_structure(vertices, edges)


class TestSortedArrayKernels:
    @pytest.mark.parametrize("seed", range(8))
    def test_intersect_matches_set_intersection(self, seed):
        rng = random.Random(seed)
        a = sorted(rng.sample(range(200), rng.randint(0, 60)))
        b = sorted(rng.sample(range(200), rng.randint(0, 60)))
        got = list(intersect_sorted(array("q", a), array("q", b)))
        assert got == sorted(set(a) & set(b))

    @pytest.mark.parametrize("seed", range(8))
    def test_union_matches_set_union(self, seed):
        rng = random.Random(seed)
        a = sorted(rng.sample(range(200), rng.randint(0, 60)))
        b = sorted(rng.sample(range(200), rng.randint(0, 60)))
        got = list(union_sorted(array("q", a), array("q", b)))
        assert got == sorted(set(a) | set(b))

    def test_intersect_disjoint_and_nested_runs(self):
        assert list(intersect_sorted([1, 2, 3], [10, 20])) == []
        assert list(intersect_sorted([5], list(range(100)))) == [5]
        assert list(intersect_sorted([], [1, 2])) == []

    def test_bitset_roundtrip(self):
        ids = [0, 3, 17, 63, 64, 100]
        bs = bitset_of(ids, 101)
        assert bitset_ids(bs) == ids
        assert bitset_of([], 10) == 0
        assert bitset_ids(0) == []

    def test_bitset_membership_and_subset(self):
        a = bitset_of([1, 2, 5], 8)
        b = bitset_of([1, 2, 5, 7], 8)
        assert (a >> 5) & 1 == 1
        assert (a >> 3) & 1 == 0
        assert a & ~b == 0  # a subset of b
        assert b & ~a != 0


class TestColumnarAdjacency:
    @pytest.mark.parametrize(
        "structure",
        [
            path_graph(9),
            grid_graph(3, 4),
            complete_graph(5),
            star_graph(6),
            _random_graph(0),
            _random_graph(1),
        ],
        ids=["path", "grid", "clique", "star", "rand0", "rand1"],
    )
    def test_csr_matches_dict_adjacency(self, structure):
        kernel = structure.columnar()
        interner = kernel.interner
        adjacency = structure.adjacency()
        for element in structure.universe_order:
            eid = interner.id_of(element)
            got = {interner.elements[i] for i in kernel.neighbours(eid)}
            assert got == set(adjacency[element])
            assert kernel.degree(eid) == len(adjacency[element])

    def test_higher_arity_tuples_induce_clique_edges(self):
        sig = Signature.of(T=3)
        structure = Structure(
            sig, [1, 2, 3, 4], {"T": [(1, 2, 3), (4, 4, 4)]}
        )
        kernel = structure.columnar()
        interner = kernel.interner
        assert set(kernel.neighbours(interner.id_of(1))) == {
            interner.id_of(2),
            interner.id_of(3),
        }
        # Singleton-support tuples contribute no Gaifman edges.
        assert list(kernel.neighbours(interner.id_of(4))) == []


class TestBallKernels:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("radius", [0, 1, 2, 3])
    def test_ball_ids_matches_bfs(self, seed, radius):
        structure = _random_graph(seed)
        kernel = structure.columnar()
        interner = kernel.interner
        for element in structure.universe_order:
            reference = set(distances_from(structure, [element], radius))
            ids = kernel.ball_ids((interner.id_of(element),), radius)
            assert ids == sorted(ids)
            assert {interner.elements[i] for i in ids} == reference

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_source_distances_match(self, seed):
        structure = _random_graph(seed)
        kernel = structure.columnar()
        interner = kernel.interner
        sources = structure.universe_order[:3]
        reference = distances_from(structure, sources)
        ids, dists = kernel.distances(interner.ids(sources))
        got = {interner.elements[i]: d for i, d in zip(ids, dists)}
        assert got == reference

    def test_distance_between_matches_reference(self):
        structure = grid_graph(3, 3)
        kernel = structure.columnar()
        interner = kernel.interner
        from repro.structures.gaifman import distance

        for a in structure.universe_order:
            for b in structure.universe_order:
                want = distance(structure, a, b)
                got = kernel.distance_between(interner.id_of(a), interner.id_of(b))
                assert (math.inf if got is None else got) == want

    def test_disconnected_ball_stays_in_component(self):
        structure = graph_structure([1, 2, 3, 4], [(1, 2)])
        kernel = structure.columnar()
        ids = kernel.ball_ids((kernel.interner.id_of(3),), 5)
        assert [kernel.interner.elements[i] for i in ids] == [3]


class TestColumnarRelations:
    def test_rows_sorted_and_columns_aligned(self):
        structure = graph_structure([3, 1, 2], [(3, 1), (2, 3)])
        relation = structure.columnar().relation("E")
        rows = [relation.row(i) for i in range(relation.row_count)]
        assert rows == sorted(rows)
        assert relation.arity == 2
        assert relation.row_count == 4

    def test_index_groups_rows_by_id(self):
        structure = star_graph(4)
        kernel = structure.columnar()
        relation = kernel.relation("E")
        centre = kernel.interner.id_of(0)
        index = relation.index(0)
        assert len(index[centre]) == 4
        for row_idx in index[centre]:
            assert relation.columns[0][row_idx] == centre
        assert list(index) == sorted(index)

    def test_index_position_out_of_range(self):
        structure = path_graph(3)
        with pytest.raises(ArityError):
            structure.columnar().relation("E").index(2)

    def test_distinct_per_column(self):
        sig = Signature.of(R=2)
        structure = Structure(
            sig,
            ["a", "b", "c"],
            {"R": [("a", "a"), ("a", "b"), ("a", "c")]},
        )
        kernel = structure.columnar()
        assert kernel.distinct_per_column("R") == (1, 3)
        assert kernel.relation("R").distinct_count(0) == 1

    def test_empty_relation(self):
        sig = Signature.of(R=2)
        structure = Structure(sig, [1, 2], {})
        relation = structure.columnar().relation("R")
        assert relation.row_count == 0
        assert relation.index(0) == {}
        assert structure.columnar().distinct_per_column("R") == (0, 0)
