"""Tests for structure operations (expansions, reducts, unions, ...)."""

import pytest
from hypothesis import given, settings

from repro.errors import SignatureError, UniverseError
from repro.structures.builders import graph_structure, path_graph
from repro.structures.gaifman import is_connected
from repro.structures.operations import (
    are_isomorphic,
    disjoint_union,
    expansion,
    pin_elements,
    reduct,
    relabel,
)
from repro.structures.signature import Signature

from ..conftest import small_graphs


class TestExpansionReduct:
    def test_expansion_adds_symbols(self, path5):
        expanded = expansion(path5, Signature.of(Mark=1), {"Mark": [(3,)]})
        assert expanded.has_tuple("Mark", (3,))
        assert expanded.relation("E") == path5.relation("E")

    def test_expansion_cannot_overwrite(self, path5):
        with pytest.raises(SignatureError):
            expansion(path5, Signature.of(E=2), {"E": []})

    def test_reduct_roundtrip(self, path5):
        expanded = expansion(path5, Signature.of(Mark=1), {"Mark": [(3,)]})
        back = reduct(expanded, path5.signature)
        assert back == path5

    def test_reduct_requires_subsignature(self, path5):
        with pytest.raises(SignatureError):
            reduct(path5, Signature.of(Nope=1))

    def test_expansion_preserves_gaifman_graph_for_unary(self, path5):
        """Unary expansions never change the Gaifman graph — the fact the
        Theorem 6.10 pipeline relies on to stay inside the class C."""
        expanded = expansion(path5, Signature.of(Mark=1), {"Mark": [(1,), (5,)]})
        assert expanded.adjacency() == path5.adjacency()


class TestPinElements:
    def test_pin_creates_singletons(self, path5):
        pinned = pin_elements(path5, {"X__x": 2, "X__y": 4})
        assert pinned.relation("X__x") == frozenset({(2,)})
        assert pinned.relation("X__y") == frozenset({(4,)})

    def test_pin_foreign_element_rejected(self, path5):
        with pytest.raises(UniverseError):
            pin_elements(path5, {"X__x": 42})


class TestDisjointUnion:
    def test_sizes_add(self, path5, triangle):
        union = disjoint_union(path5, triangle)
        assert union.order() == path5.order() + triangle.order()
        assert union.size() == path5.size() + triangle.size()

    def test_no_cross_edges(self, path5, triangle):
        union = disjoint_union(path5, triangle)
        assert not is_connected(union)
        for u, v in union.relation("E"):
            assert u[0] == v[0]  # same side tag

    def test_signature_mismatch_rejected(self, path5):
        other = graph_structure([1], [])
        from repro.structures.operations import expansion as expand

        coloured = expand(other, Signature.of(R=1), {"R": []})
        with pytest.raises(SignatureError):
            disjoint_union(path5, coloured)


class TestRelabelAndIsomorphism:
    def test_relabel_preserves_isomorphism_type(self, triangle):
        renamed = relabel(triangle, {1: "a", 2: "b", 3: "c"})
        assert are_isomorphic(triangle, renamed)

    def test_relabel_must_be_injective(self, triangle):
        with pytest.raises(UniverseError):
            relabel(triangle, {1: "a", 2: "a", 3: "c"})

    def test_non_isomorphic_detected(self):
        a = graph_structure([1, 2, 3], [(1, 2)])
        b = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
        assert not are_isomorphic(a, b)

    def test_same_degree_sequence_non_isomorphic(self):
        # C6 vs two triangles: both 2-regular on 6 vertices.
        c6 = graph_structure(range(6), [(i, (i + 1) % 6) for i in range(6)])
        two_triangles = graph_structure(
            range(6), [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        )
        assert not are_isomorphic(c6, two_triangles)

    @given(small_graphs(max_vertices=5))
    @settings(max_examples=25, deadline=None)
    def test_relabelled_graphs_always_isomorphic(self, structure):
        shifted = relabel(structure, lambda v: ("shift", v))
        assert are_isomorphic(structure, shifted)

    def test_size_limit_enforced(self):
        big = path_graph(20)
        with pytest.raises(ValueError):
            are_isomorphic(big, big)
