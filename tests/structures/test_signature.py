"""Unit tests for relational signatures."""

import pytest

from repro.errors import SignatureError
from repro.structures.signature import GRAPH_SIGNATURE, RelationSymbol, Signature


class TestRelationSymbol:
    def test_basic_properties(self):
        symbol = RelationSymbol("E", 2)
        assert symbol.name == "E"
        assert symbol.arity == 2

    def test_zero_arity_allowed(self):
        assert RelationSymbol("Flag", 0).arity == 0

    def test_negative_arity_rejected(self):
        with pytest.raises(SignatureError):
            RelationSymbol("E", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(SignatureError):
            RelationSymbol("", 1)

    def test_value_equality(self):
        assert RelationSymbol("E", 2) == RelationSymbol("E", 2)
        assert RelationSymbol("E", 2) != RelationSymbol("E", 3)


class TestSignature:
    def test_of_constructor(self):
        sig = Signature.of(E=2, R=1, Zero=0)
        assert len(sig) == 3
        assert sig["E"].arity == 2
        assert sig["Zero"].arity == 0

    def test_size_is_sum_of_arities(self):
        assert Signature.of(E=2, R=1, T=3).size() == 6

    def test_empty_signature(self):
        sig = Signature()
        assert len(sig) == 0
        assert sig.size() == 0
        assert sig.max_arity() == 0

    def test_duplicate_name_same_arity_collapses(self):
        sig = Signature([RelationSymbol("E", 2), RelationSymbol("E", 2)])
        assert len(sig) == 1

    def test_conflicting_arity_rejected(self):
        with pytest.raises(SignatureError):
            Signature([RelationSymbol("E", 2), RelationSymbol("E", 3)])

    def test_membership_by_name_and_symbol(self):
        sig = Signature.of(E=2)
        assert "E" in sig
        assert RelationSymbol("E", 2) in sig
        assert RelationSymbol("E", 3) not in sig
        assert "F" not in sig

    def test_lookup_unknown_raises(self):
        with pytest.raises(SignatureError):
            Signature.of(E=2)["F"]

    def test_union_and_extend(self):
        sig = Signature.of(E=2).union(Signature.of(R=1))
        assert set(sig.names) == {"E", "R"}
        extended = sig.extend(RelationSymbol("B", 1))
        assert "B" in extended
        # the original is untouched (immutability)
        assert "B" not in sig

    def test_union_conflict_rejected(self):
        with pytest.raises(SignatureError):
            Signature.of(E=2).union(Signature.of(E=1))

    def test_restrict(self):
        sig = Signature.of(E=2, R=1, B=1)
        small = sig.restrict(["E", "B"])
        assert set(small.names) == {"B", "E"}
        with pytest.raises(SignatureError):
            sig.restrict(["Nope"])

    def test_subsignature(self):
        big = Signature.of(E=2, R=1)
        assert Signature.of(E=2).is_subsignature_of(big)
        assert not Signature.of(E=3).is_subsignature_of(big)

    def test_hash_and_equality(self):
        a = Signature.of(E=2, R=1)
        b = Signature.of(R=1, E=2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Signature.of(E=2)

    def test_graph_signature_constant(self):
        assert GRAPH_SIGNATURE["E"].arity == 2
        assert GRAPH_SIGNATURE.size() == 2
