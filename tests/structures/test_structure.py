"""Unit tests for finite structures."""

import pytest

from repro.errors import ArityError, SignatureError, UniverseError
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def sig():
    return Signature.of(E=2, R=1, Flag=0)


class TestConstruction:
    def test_basic(self, sig):
        s = Structure(sig, [1, 2, 3], {"E": [(1, 2)], "R": [(3,)]})
        assert s.order() == 3
        assert s.size() == 3 + 2
        assert s.has_tuple("E", (1, 2))
        assert not s.has_tuple("E", (2, 1))

    def test_missing_relations_default_empty(self, sig):
        s = Structure(sig, [1])
        assert s.relation("E") == frozenset()
        assert s.relation("Flag") == frozenset()

    def test_zero_ary_relation(self, sig):
        s = Structure(sig, [1], {"Flag": [()]})
        assert s.has_tuple("Flag", ())

    def test_empty_universe_rejected(self, sig):
        with pytest.raises(UniverseError):
            Structure(sig, [])

    def test_duplicate_universe_elements_collapse(self, sig):
        s = Structure(sig, [1, 1, 2])
        assert s.order() == 2
        assert s.universe_order == (1, 2)

    def test_arity_mismatch_rejected(self, sig):
        with pytest.raises(ArityError):
            Structure(sig, [1, 2], {"E": [(1,)]})

    def test_tuple_outside_universe_rejected(self, sig):
        with pytest.raises(UniverseError):
            Structure(sig, [1, 2], {"E": [(1, 9)]})

    def test_unknown_relation_rejected(self, sig):
        with pytest.raises(SignatureError):
            Structure(sig, [1], {"Nope": [(1,)]})

    def test_arbitrary_hashable_elements(self, sig):
        s = Structure(sig, ["a", ("t", 1)], {"E": [("a", ("t", 1))]})
        assert ("t", 1) in s


class TestDerivedData:
    def test_adjacency_from_tuples(self, sig):
        s = Structure(sig, [1, 2, 3], {"E": [(1, 2), (2, 3)]})
        adjacency = s.adjacency()
        assert adjacency[1] == frozenset({2})
        assert adjacency[2] == frozenset({1, 3})

    def test_self_loops_do_not_create_adjacency(self, sig):
        s = Structure(sig, [1, 2], {"E": [(1, 1)]})
        assert s.adjacency()[1] == frozenset()

    def test_higher_arity_tuples_form_cliques(self):
        sig = Signature.of(T=3)
        s = Structure(sig, [1, 2, 3, 4], {"T": [(1, 2, 3)]})
        adjacency = s.adjacency()
        assert adjacency[1] == frozenset({2, 3})
        assert adjacency[4] == frozenset()

    def test_index(self, sig):
        s = Structure(sig, [1, 2, 3], {"E": [(1, 2), (1, 3), (2, 3)]})
        by_first = s.index("E", 0)
        assert sorted(by_first[1]) == [(1, 2), (1, 3)]
        assert (2, 3) in by_first[2]
        assert 3 not in by_first

    def test_index_position_out_of_range(self, sig):
        s = Structure(sig, [1])
        with pytest.raises(ArityError):
            s.index("E", 2)


class TestValueSemantics:
    def test_extensional_equality(self, sig):
        a = Structure(sig, [1, 2], {"E": [(1, 2)]})
        b = Structure(sig, [2, 1], {"E": [(1, 2)]})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_relations(self, sig):
        a = Structure(sig, [1, 2], {"E": [(1, 2)]})
        b = Structure(sig, [1, 2], {"E": [(2, 1)]})
        assert a != b
