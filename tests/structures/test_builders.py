"""Tests for the structure builders."""

import pytest

from repro.errors import UniverseError
from repro.structures.builders import (
    balanced_tree,
    complete_graph,
    coloured_graph_structure,
    cycle_graph,
    forest_structure,
    graph_structure,
    grid_graph,
    path_graph,
    star_graph,
    string_signature,
    string_structure,
)
from repro.structures.gaifman import connected_components, distance, is_connected


class TestGraphBuilders:
    def test_symmetric_closure(self):
        g = graph_structure([1, 2], [(1, 2)])
        assert g.has_tuple("E", (1, 2)) and g.has_tuple("E", (2, 1))

    def test_directed_mode(self):
        g = graph_structure([1, 2], [(1, 2)], symmetric=False)
        assert g.has_tuple("E", (1, 2)) and not g.has_tuple("E", (2, 1))

    def test_path_and_cycle(self):
        assert distance(path_graph(10), 1, 10) == 9
        assert distance(cycle_graph(10), 1, 10) == 1
        assert distance(cycle_graph(10), 1, 6) == 5

    def test_cycle_minimum_size(self):
        with pytest.raises(UniverseError):
            cycle_graph(2)

    def test_complete_graph(self):
        k5 = complete_graph(5)
        assert len(k5.relation("E")) == 20  # 10 undirected edges, both ways
        assert all(distance(k5, 1, v) <= 1 for v in k5.universe)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.order() == 12
        assert distance(g, (0, 0), (2, 3)) == 5
        assert is_connected(g)

    def test_star_degrees(self):
        s = star_graph(7)
        assert len(s.adjacency()[0]) == 7
        assert all(len(s.adjacency()[i]) == 1 for i in range(1, 8))

    def test_balanced_tree(self):
        t = balanced_tree(2, 3)
        assert t.order() == 1 + 2 + 4 + 8
        assert is_connected(t)
        assert distance(t, (), (0, 0, 0)) == 3

    def test_forest(self):
        f = forest_structure({2: 1, 3: 1, 5: 4})
        assert len(connected_components(f)) == 2


class TestColouredGraphs:
    def test_colours_are_unary_relations(self):
        g = coloured_graph_structure(
            [1, 2, 3], [(1, 2)], red=[1], blue=[2, 3], green=[]
        )
        assert g.has_tuple("R", (1,))
        assert g.has_tuple("B", (3,))
        assert g.relation("G") == frozenset()
        # directed edges
        assert g.has_tuple("E", (1, 2)) and not g.has_tuple("E", (2, 1))


class TestStrings:
    def test_string_signature(self):
        sig = string_signature("ab")
        assert sig["leq"].arity == 2
        assert sig["P_a"].arity == 1

    def test_string_structure_positions(self):
        s = string_structure("abca")
        assert s.order() == 4
        assert s.has_tuple("P_a", (1,)) and s.has_tuple("P_a", (4,))
        assert s.has_tuple("P_b", (2,))
        assert s.has_tuple("leq", (1, 3)) and not s.has_tuple("leq", (3, 1))
        assert s.has_tuple("leq", (2, 2))

    def test_empty_word_rejected(self):
        with pytest.raises(UniverseError):
            string_structure("")

    def test_alphabet_mismatch_rejected(self):
        with pytest.raises(UniverseError):
            string_structure("abd", alphabet="abc")

    def test_gaifman_graph_of_string_is_clique(self):
        # The linear order makes every pair adjacent: strings have unbounded
        # degree — why Theorem 4.3 is interesting.
        s = string_structure("aaaa")
        assert all(len(s.adjacency()[p]) == 3 for p in s.universe)
