"""Properties of the plan-cache normaliser (``repro.plan.normalise``)."""

import pytest
from hypothesis import given, settings

from repro.logic.parser import parse_formula, parse_term
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    PredicateAtom,
    Top,
    free_variables,
    subexpressions,
)
from repro.plan import canonicalise, flatten_conjuncts, replace_atoms

from ..conftest import foc1_formulas


class TestCanonicalise:
    def test_alpha_equivalent_inputs_are_structurally_equal(self):
        left = parse_formula("exists u. E(u, y)")
        right = parse_formula("exists v. E(v, y)")
        assert left != right
        assert canonicalise(left) == canonicalise(right)

    def test_counting_term_binders_are_renamed_too(self):
        left = parse_term("#(a). E(x, a)")
        right = parse_term("#(b). E(x, b)")
        assert left != right
        assert canonicalise(left) == canonicalise(right)

    def test_bound_names_follow_traversal_order(self):
        phi = parse_formula("exists a. exists b. E(a, b)")
        assert canonicalise(phi) == Exists("_b0", Exists("_b1", Atom("E", ("_b0", "_b1"))))

    def test_free_variables_keep_their_names(self):
        phi = parse_formula("E(x, y) & exists z. E(z, y)")
        assert free_variables(canonicalise(phi)) == {"x", "y"}

    def test_canonical_names_skip_free_variable_collisions(self):
        # A free variable already named _b0 must not be captured.
        phi = Exists("u", And(Atom("E", ("u", "_b0")), Top()))
        result = canonicalise(phi)
        assert free_variables(result) == {"_b0"}
        assert result.variable != "_b0"

    def test_result_shares_no_nodes_with_input(self):
        phi = parse_formula("exists x. @eq(#(y). E(x, y), 2) & E(x, x)")
        original = {id(node) for node in subexpressions(phi)}
        copied = {id(node) for node in subexpressions(canonicalise(phi))}
        assert original.isdisjoint(copied)

    def test_idempotent_up_to_equality(self):
        phi = parse_formula("exists a. @even(#(b). (E(a, b) | E(b, a)))")
        once = canonicalise(phi)
        assert canonicalise(once) == once

    @settings(max_examples=50, deadline=None)
    @given(foc1_formulas())
    def test_random_formulas_canonicalise_idempotently(self, phi):
        once = canonicalise(phi)
        assert canonicalise(once) == once
        assert free_variables(once) == free_variables(phi)
        original = {id(node) for node in subexpressions(phi)}
        copied = {id(node) for node in subexpressions(once)}
        assert original.isdisjoint(copied)


class TestFlattenConjuncts:
    def test_nested_conjunctions_flatten_in_order(self):
        phi = parse_formula("(E(x, y) & E(y, z)) & (x = y & true)")
        parts = flatten_conjuncts(phi)
        assert parts == [
            Atom("E", ("x", "y")),
            Atom("E", ("y", "z")),
            parse_formula("x = y"),
        ]

    def test_non_conjunction_is_a_singleton(self):
        phi = parse_formula("E(x, y) | E(y, x)")
        assert flatten_conjuncts(phi) == [phi]

    def test_top_alone_flattens_to_nothing(self):
        assert flatten_conjuncts(Top()) == []


class TestReplaceAtoms:
    def test_replaces_structurally_equal_predicate_atoms(self):
        phi = parse_formula("exists x. @even(#(y). E(x, y))")
        atom = next(
            node for node in subexpressions(phi) if isinstance(node, PredicateAtom)
        )
        # A structurally-equal copy must hit the mapping too (value equality).
        copy = PredicateAtom(atom.predicate, atom.terms)
        replacement = Atom("Paux__0", ("x",))
        rewritten = replace_atoms(phi, {copy: replacement})
        assert not any(
            isinstance(node, PredicateAtom) for node in subexpressions(rewritten)
        )
        assert any(node == replacement for node in subexpressions(rewritten))

    def test_unmapped_expressions_pass_through(self):
        phi = parse_formula("E(x, y) & dist(x, y) <= 2")
        assert replace_atoms(phi, {}) == phi


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
