"""The plan compiler: stratification, count DAG, guards, signatures."""

import pytest

from repro.errors import FormulaError
from repro.logic.parser import parse_formula, parse_term
from repro.logic.syntax import PredicateAtom, subexpressions
from repro.plan import (
    CountComplement,
    CountConstant,
    CountDecomposition,
    CountInclusionExclusion,
    PlanOptions,
    compile_plan,
    infer_signature,
)
from repro.structures.builders import graph_structure
from repro.structures.signature import RelationSymbol, Signature

GRAPH = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
SIG = GRAPH.signature


def _count_plan(text, variables, options=None):
    phi = parse_formula(text)
    return compile_plan("count", [phi], variables, SIG, options)


class TestStratification:
    def test_single_predicate_atom_is_one_unary_step(self):
        plan = compile_plan(
            "model_check", [parse_formula("exists x. @even(#(y). E(x, y))")], (), SIG
        )
        assert len(plan.steps) == 1
        (step,) = plan.steps
        assert step.symbol == "Paux__0"
        assert step.arity == 1
        assert step.predicate == "even"
        assert step.stratum == 1
        assert plan.depth == 1
        # The residue mentions the auxiliary relation, not the atom.
        assert not any(
            isinstance(node, PredicateAtom) for node in subexpressions(plan.roots[0])
        )

    def test_nested_atoms_stratify_inside_out(self):
        phi = parse_formula("@geq1(#(x). @even(#(y). E(x, y)))")
        plan = compile_plan("model_check", [phi], (), SIG)
        assert [step.stratum for step in plan.steps] == [1, 2]
        assert plan.steps[0].predicate == "even"  # innermost first
        assert plan.steps[1].predicate == "geq1"
        assert plan.steps[1].arity == 0  # sentence-level atom -> 0-ary
        assert plan.depth == 2

    def test_fresh_symbols_skip_signature_names(self):
        taken = Signature(list(SIG) + [RelationSymbol("Paux__0", 1)])
        plan = compile_plan(
            "model_check",
            [parse_formula("exists x. @even(#(y). E(x, y))")],
            (),
            taken,
        )
        assert plan.steps[0].symbol == "Paux__1"

    def test_out_of_fragment_atoms_stay_inline(self):
        # Two joint free variables: rule 4' says no materialisation.
        phi = parse_formula("exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))")
        plan = compile_plan("model_check", [phi], (), SIG)
        assert plan.steps == ()
        assert any(
            isinstance(node, PredicateAtom) for node in subexpressions(plan.roots[0])
        )


class TestCountDag:
    def _root_step(self, plan):
        return plan.counts[id(plan.roots[0])]

    def test_top_compiles_to_constant(self):
        plan = _count_plan("true", ("x",))
        step = self._root_step(plan)
        assert isinstance(step, CountConstant) and not step.zero

    def test_negation_compiles_to_complement(self):
        plan = _count_plan("!E(x, y)", ("y",))
        step = self._root_step(plan)
        assert isinstance(step, CountComplement)
        assert id(step.inner) in plan.counts  # child compiled too

    def test_disjunction_builds_the_overlap_once(self):
        plan = _count_plan("E(x, y) | E(y, x)", ("y",))
        step = self._root_step(plan)
        assert isinstance(step, CountInclusionExclusion)
        # The overlap And node is plan-owned and itself compiled.
        assert id(step.overlap) in plan.counts

    def test_implies_and_iff_rewrite(self):
        assert self._root_step(_count_plan("E(x, y) -> x = y", ("y",))).rule == "implies"
        assert self._root_step(_count_plan("E(x, y) <-> x = y", ("y",))).rule == "iff"

    def test_conjunction_factors_into_disjoint_components(self):
        plan = _count_plan("E(x, y) & E(z, w) & E(a, a)", ("x", "y", "z", "w"))
        step = self._root_step(plan)
        assert isinstance(step, CountDecomposition)
        assert step.gates == (parse_formula("E(a, a)"),)  # no counted variables
        assert sorted(c.variables for c in step.components) == [("x", "y"), ("z", "w")]
        assert step.unused == ()

    def test_unused_variables_become_the_free_tail(self):
        step = self._root_step(_count_plan("E(x, x)", ("x", "y", "z")))
        assert step.unused == ("y", "z")

    def test_factoring_off_keeps_one_component(self):
        plan = _count_plan(
            "E(x, y) & E(z, w)",
            ("x", "y", "z", "w"),
            PlanOptions(factoring=False, guards=True),
        )
        step = self._root_step(plan)
        assert len(step.components) == 1
        assert step.components[0].variables == ("x", "y", "z", "w")


class TestGuards:
    def _component(self, text, variables, options=None):
        plan = _count_plan(text, variables, options)
        (component,) = plan.counts[id(plan.roots[0])].components
        return component

    def _kinds(self, component, variable):
        return {g.kind for g in component.guards if g.variable == variable}

    def test_equality_index_and_ball_guards(self):
        component = self._component(
            "y = x & E(x, y) & dist(y, z) <= 2", ("y",)
        )
        assert self._kinds(component, "y") == {"equality", "index", "ball"}

    def test_exists_block_look_through(self):
        component = self._component("exists u. E(u, y)", ("y",))
        guards = [g for g in component.guards if g.kind == "index"]
        assert guards and "inside exists-block" in guards[0].source

    def test_shadowed_variable_gets_no_look_through(self):
        from repro.plan.compiler import _guard_from

        # The exists-chain rebinds "u": its body must not be offered as a
        # candidate source for the outer "u".
        conjunct = parse_formula("exists u. E(u, u)")
        assert _guard_from(conjunct, "u") is None
        assert _guard_from(parse_formula("exists v. E(v, u)"), "u").kind == "index"

    def test_scan_fallback_when_nothing_guards(self):
        # A disjunctive conjunct offers no candidate pool for "y".
        component = self._component("(E(y, x) | E(x, y)) & true", ("y",))
        assert self._kinds(component, "y") == {"scan"}

    def test_guards_disabled_yield_scan_specs(self):
        component = self._component(
            "E(x, y)", ("y",), PlanOptions(factoring=True, guards=False)
        )
        (guard,) = component.guards
        assert guard.kind == "scan" and "disabled" in guard.source


class TestInferSignature:
    def test_collects_relations_with_arities(self):
        phi = parse_formula("E(x, y) & P(x) & exists z. E(z, z)")
        signature = infer_signature([phi])
        assert signature.get("E").arity == 2
        assert signature.get("P").arity == 1

    def test_arity_conflict_raises(self):
        with pytest.raises(FormulaError):
            infer_signature([parse_formula("E(x, y) & E(x, x, y)")])

    def test_counting_term_bodies_are_searched(self):
        term = parse_term("#(y). R(x, y)")
        assert infer_signature([term]).get("R").arity == 2


class TestExplainRendering:
    def test_explain_names_the_paper_stages(self):
        plan = compile_plan(
            "model_check", [parse_formula("exists x. @even(#(y). E(x, y))")], (), SIG
        )
        text = plan.explain()
        assert "stratification (Theorem 6.10)" in text
        assert "Paux__0" in text
        assert "count DAG (Lemma 6.4)" in text
        assert "options: factoring=on guards=on" in text

    def test_explain_renders_guard_annotations(self):
        plan = _count_plan("E(x, y) & dist(y, z) <= 1", ("y",))
        text = plan.explain()
        assert "guard y: index [relation E]" in text
        assert "guard y: ball" in text
