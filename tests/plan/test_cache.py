"""The plan cache: LRU behaviour, counters, and metrics emission."""

import pytest

from repro.logic.parser import parse_formula
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.plan import PlanCache, compile_plan, default_plan_cache, infer_signature


def _compile(text):
    phi = parse_formula(text)
    return lambda: compile_plan("model_check", [phi], (), infer_signature([phi]))


class TestPlanCache:
    def test_miss_compiles_then_hit_reuses(self):
        cache = PlanCache()
        calls = []
        phi = parse_formula("exists x. E(x, x)")

        def build():
            calls.append(1)
            return compile_plan("model_check", [phi], (), infer_signature([phi]))

        first = cache.get_or_compile("k", build)
        second = cache.get_or_compile("k", build)
        assert first is second
        assert calls == [1]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_evicts_the_oldest_entry(self):
        cache = PlanCache(capacity=2)
        cache.get_or_compile("a", _compile("E(x, x)"))
        cache.get_or_compile("b", _compile("E(x, y)"))
        cache.get_or_compile("a", _compile("E(x, x)"))  # refresh "a"
        cache.get_or_compile("c", _compile("E(y, y)"))  # evicts "b"
        assert cache.evictions == 1
        cache.get_or_compile("a", _compile("E(x, x)"))  # still cached
        assert cache.hits == 2
        cache.get_or_compile("b", _compile("E(x, y)"))  # was evicted
        assert cache.misses == 4

    def test_stats_shape_and_hit_rate(self):
        cache = PlanCache(capacity=8)
        assert cache.stats()["hit_rate"] == 0.0
        cache.get_or_compile("k", _compile("E(x, x)"))
        cache.get_or_compile("k", _compile("E(x, x)"))
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "capacity": 8,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_clear_resets_everything(self):
        cache = PlanCache()
        cache.get_or_compile("k", _compile("E(x, x)"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_default_cache_is_shared(self):
        assert default_plan_cache() is default_plan_cache()


class TestCacheMetrics:
    def test_hit_miss_eviction_counters_and_compile_histogram(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            cache = PlanCache(capacity=1)
            cache.get_or_compile("a", _compile("E(x, x)"))  # miss
            cache.get_or_compile("a", _compile("E(x, x)"))  # hit
            cache.get_or_compile("b", _compile("E(x, y)"))  # miss + eviction
        finally:
            set_metrics(previous)
        assert registry.counter("plan.cache.hit") == 1
        assert registry.counter("plan.cache.miss") == 2
        assert registry.counter("plan.cache.eviction") == 1
        histogram = registry.snapshot()["histograms"]["plan.compile.seconds"]
        assert histogram["count"] == 2

    def test_no_registry_means_no_crash(self):
        previous = set_metrics(None)
        try:
            PlanCache().get_or_compile("a", _compile("E(x, x)"))
        finally:
            set_metrics(previous)
