"""The plan cache: LRU behaviour, counters, and metrics emission."""

import pytest

from repro.logic.parser import parse_formula
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.plan import PlanCache, compile_plan, default_plan_cache, infer_signature


def _compile(text):
    phi = parse_formula(text)
    return lambda: compile_plan("model_check", [phi], (), infer_signature([phi]))


class TestPlanCache:
    def test_miss_compiles_then_hit_reuses(self):
        cache = PlanCache()
        calls = []
        phi = parse_formula("exists x. E(x, x)")

        def build():
            calls.append(1)
            return compile_plan("model_check", [phi], (), infer_signature([phi]))

        first = cache.get_or_compile("k", build)
        second = cache.get_or_compile("k", build)
        assert first is second
        assert calls == [1]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_evicts_the_oldest_entry(self):
        cache = PlanCache(capacity=2)
        cache.get_or_compile("a", _compile("E(x, x)"))
        cache.get_or_compile("b", _compile("E(x, y)"))
        cache.get_or_compile("a", _compile("E(x, x)"))  # refresh "a"
        cache.get_or_compile("c", _compile("E(y, y)"))  # evicts "b"
        assert cache.evictions == 1
        cache.get_or_compile("a", _compile("E(x, x)"))  # still cached
        assert cache.hits == 2
        cache.get_or_compile("b", _compile("E(x, y)"))  # was evicted
        assert cache.misses == 4

    def test_stats_shape_and_hit_rate(self):
        cache = PlanCache(capacity=8)
        # No traffic yet: no rate, not "all misses".
        assert cache.stats()["hit_rate"] is None
        cache.get_or_compile("k", _compile("E(x, x)"))
        cache.get_or_compile("k", _compile("E(x, x)"))
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "capacity": 8,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_clear_resets_everything(self):
        cache = PlanCache()
        cache.get_or_compile("k", _compile("E(x, x)"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_default_cache_is_shared(self):
        assert default_plan_cache() is default_plan_cache()


class TestCacheMetrics:
    def test_hit_miss_eviction_counters_and_compile_histogram(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            cache = PlanCache(capacity=1)
            cache.get_or_compile("a", _compile("E(x, x)"))  # miss
            cache.get_or_compile("a", _compile("E(x, x)"))  # hit
            cache.get_or_compile("b", _compile("E(x, y)"))  # miss + eviction
        finally:
            set_metrics(previous)
        assert registry.counter("plan.cache.hit") == 1
        assert registry.counter("plan.cache.miss") == 2
        assert registry.counter("plan.cache.eviction") == 1
        histogram = registry.snapshot()["histograms"]["plan.compile.seconds"]
        assert histogram["count"] == 2

    def test_no_registry_means_no_crash(self):
        previous = set_metrics(None)
        try:
            PlanCache().get_or_compile("a", _compile("E(x, x)"))
        finally:
            set_metrics(previous)


class TestCacheThreadSafety:
    def test_hammering_one_key_compiles_once_and_returns_one_plan(self):
        """Regression: get_or_compile was an unsynchronised check-then-act,
        so concurrent misses on one key could each compile their own plan
        and corrupt the OrderedDict.  The plan identity matters — executor
        memo tables key on id(plan node)."""
        import threading

        cache = PlanCache(capacity=8)
        compiles = []
        compile_lock = threading.Lock()
        barrier = threading.Barrier(8)
        results = [None] * 8

        def build():
            with compile_lock:
                compiles.append(1)
            return compile_plan(
                "model_check",
                [parse_formula("exists x. E(x, x)")],
                (),
                infer_signature([parse_formula("exists x. E(x, x)")]),
            )

        def worker(slot):
            barrier.wait()
            for _ in range(50):
                results[slot] = cache.get_or_compile("hot", build)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Everyone got the same canonical plan object...
        assert all(r is results[0] for r in results)
        # ...the cache holds exactly that plan...
        assert len(cache) == 1
        # ...and the accounting is exact: 400 calls split hit/miss with one
        # stored plan.  (Several racers may have compiled before the first
        # insert won; later compiles were discarded, never returned.)
        assert cache.hits + cache.misses == 400
        assert cache.misses == len(compiles)
        assert cache.evictions == 0

    def test_concurrent_distinct_keys_keep_lru_consistent(self):
        import threading

        cache = PlanCache(capacity=4)
        barrier = threading.Barrier(6)

        def worker(seed):
            barrier.wait()
            for i in range(40):
                key = (seed + i) % 10
                cache.get_or_compile(("k", key), _compile("E(x, y)"))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(cache) <= 4
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 240
