"""Plan execution: differential correctness and cache reuse.

The planned executor is the subject, the literal Definition 3.1
:class:`BruteForceEvaluator` is the oracle.  Plain ``random.Random(seed)``
so each case is a fixed, re-runnable pytest id (same convention as
``tests/core/test_differential.py``).
"""

import random

import pytest

from repro.core.baseline import BruteForceEvaluator
from repro.core.evaluator import Foc1Evaluator
from repro.errors import EvaluationError
from repro.logic.parser import parse_formula, parse_term
from repro.logic.predicates import standard_collection
from repro.logic.syntax import (
    And,
    Atom,
    CountTerm,
    Eq,
    Exists,
    Not,
    Or,
    PredicateAtom,
    exists_block,
    free_variables,
)
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.plan import PlanCache, PlanExecutor, compile_plan
from repro.structures.builders import cycle_graph, graph_structure, path_graph

VARS = ("x", "y", "z")


def _random_graph(rng: random.Random):
    n = rng.randint(1, 6)
    vertices = list(range(1, n + 1))
    pairs = [(u, v) for u in vertices for v in vertices if u < v]
    edges = [pair for pair in pairs if rng.random() < 0.4]
    return graph_structure(vertices, edges)


def _random_sentence(rng: random.Random):
    """A random FOC1(P) sentence: FO shell + rule-(4') predicate atoms."""

    def atom():
        a, b = rng.choice(VARS), rng.choice(VARS)
        return Eq(a, b) if rng.random() < 0.25 else Atom("E", (a, b))

    def counting_atom():
        free = rng.choice(VARS)
        bound = [v for v in VARS if v != free][: rng.randint(1, 2)]
        body = atom()
        stray = sorted(free_variables(body) - set(bound) - {free})
        term = CountTerm(tuple(bound), exists_block(stray, body))
        predicate = rng.choice(["geq1", "even"])
        return PredicateAtom(predicate, (term,))

    def formula(depth):
        if depth == 0:
            return counting_atom() if rng.random() < 0.5 else atom()
        choice = rng.randint(0, 3)
        if choice == 0:
            return Not(formula(depth - 1))
        if choice == 1:
            return And(formula(depth - 1), formula(depth - 1))
        if choice == 2:
            return Or(formula(depth - 1), formula(depth - 1))
        return Exists(rng.choice(VARS), formula(depth - 1))

    phi = formula(rng.randint(1, 3))
    return exists_block(sorted(free_variables(phi)), phi)


class TestDifferential:
    """PlanExecutor (subject) versus BruteForceEvaluator (oracle)."""

    @pytest.mark.parametrize("seed", range(40))
    def test_model_check_agrees_with_oracle(self, seed):
        rng = random.Random(seed)
        structure = _random_graph(rng)
        sentence = _random_sentence(rng)
        plan = compile_plan("model_check", [sentence], (), structure.signature)
        subject = PlanExecutor(plan, structure, standard_collection()).model_check()
        oracle = BruteForceEvaluator().model_check(structure, sentence)
        assert subject is oracle

    @pytest.mark.parametrize("seed", range(20))
    def test_count_agrees_with_oracle(self, seed):
        rng = random.Random(seed)
        structure = _random_graph(rng)
        phi = parse_formula(
            rng.choice(
                [
                    "E(x, y)",
                    "E(x, y) & E(y, z)",
                    "E(x, y) | x = y",
                    "!E(x, y) & @geq1(#(w). E(x, w))",
                    "E(x, y) -> E(y, x)",
                ]
            )
        )
        variables = tuple(sorted(free_variables(phi)))
        plan = compile_plan("count", [phi], variables, structure.signature)
        executor = PlanExecutor(plan, structure, standard_collection())
        oracle = BruteForceEvaluator().count(structure, phi, variables)
        assert executor.count_value() == oracle

    def test_ground_and_unary_terms_agree(self):
        structure = path_graph(5)
        ground = parse_term("#(x, y). E(x, y)")
        plan = compile_plan("ground_term", [ground], (), structure.signature)
        executor = PlanExecutor(plan, structure, standard_collection())
        assert executor.ground_term_value() == BruteForceEvaluator().ground_term_value(
            structure, ground
        )

        unary = parse_term("#(y). E(x, y)")
        plan = compile_plan("unary_term", [unary], ("x",), structure.signature)
        executor = PlanExecutor(plan, structure, standard_collection())
        assert executor.unary_term_values("x") == BruteForceEvaluator().unary_term_values(
            structure, unary, "x"
        )

    def test_solutions_agree(self):
        structure = cycle_graph(5)
        phi = parse_formula("E(x, y) & @eq(#(z). E(x, z), 2)")
        variables = ("x", "y")
        plan = compile_plan("solutions", [phi], variables, structure.signature)
        executor = PlanExecutor(plan, structure, standard_collection())
        assert sorted(executor.solutions()) == sorted(
            BruteForceEvaluator().solutions(structure, phi, variables)
        )


class TestExecutorContracts:
    def test_signature_mismatch_is_rejected(self):
        from repro.structures.builders import coloured_graph_structure

        phi = parse_formula("exists x. E(x, x)")
        plan = compile_plan("model_check", [phi], (), path_graph(3).signature)
        # Same shape, different structure object: fine.
        PlanExecutor(plan, cycle_graph(4), standard_collection())
        # Different signature ({E, R, B, G} vs {E}): rejected.
        mismatched = coloured_graph_structure([1, 2], [(1, 2)], red=[1])
        with pytest.raises(EvaluationError):
            PlanExecutor(plan, mismatched, standard_collection())

    def test_materialising_an_existing_symbol_is_an_error(self):
        structure = path_graph(3)
        phi = parse_formula("exists x. @even(#(y). E(x, y))")
        plan = compile_plan("model_check", [phi], (), structure.signature)
        executor = PlanExecutor(plan, structure, standard_collection())
        executor.prepare()
        with pytest.raises(EvaluationError):
            executor.state.apply_materialise_step(plan.steps[0])

    def test_prepare_is_idempotent(self):
        structure = path_graph(3)
        phi = parse_formula("exists x. @even(#(y). E(x, y))")
        plan = compile_plan("model_check", [phi], (), structure.signature)
        executor = PlanExecutor(plan, structure, standard_collection())
        assert executor.model_check() == executor.model_check()


class TestFacadeCaching:
    def test_repeated_evaluation_hits_the_plan_cache(self):
        cache = PlanCache()
        engine = Foc1Evaluator(plan_cache=cache)
        structure = path_graph(6)
        sentence = parse_formula("forall x. @geq1(#(y). E(x, y))")
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            first = engine.model_check(structure, sentence)
            second = engine.model_check(structure, sentence)
        finally:
            set_metrics(previous)
        assert first is second is True
        assert cache.hits >= 1
        assert registry.counter("plan.cache.hit") >= 1
        assert registry.counter("plan.cache.miss") >= 1

    def test_alpha_equivalent_queries_share_a_plan(self):
        cache = PlanCache()
        engine = Foc1Evaluator(plan_cache=cache)
        structure = path_graph(4)
        engine.model_check(structure, parse_formula("exists u. E(u, u)"))
        misses = cache.misses
        engine.model_check(structure, parse_formula("exists v. E(v, v)"))
        assert cache.misses == misses  # same canonical key, pure hit
        assert cache.hits >= 1

    def test_count_via_facade_matches_oracle_with_shared_cache(self):
        cache = PlanCache()
        engine = Foc1Evaluator(plan_cache=cache)
        oracle = BruteForceEvaluator()
        phi = parse_formula("E(x, y) & !E(y, x)")
        for structure in (path_graph(4), cycle_graph(5)):
            assert engine.count(structure, phi, ["x", "y"]) == oracle.count(
                structure, phi, ["x", "y"]
            )
