"""Tests for Hanf-type evaluation (the [16] bounded-degree strategy)."""

import pytest
from hypothesis import given, settings

from repro.core.clterms import BasicClTerm
from repro.core.hanf import (
    PointedBall,
    evaluate_basic_unary_hanf,
    neighbourhood_type_census,
)
from repro.core.local_eval import evaluate_basic_unary
from repro.errors import FormulaError
from repro.logic.builder import Rel
from repro.logic.syntax import And, Eq, Exists, Not
from repro.sparse.classes import bounded_degree_graph
from repro.structures.builders import cycle_graph, grid_graph, path_graph
from repro.structures.gaifman import ball, induced

from ..conftest import small_graphs

E = Rel("E", 2)


def degree_term():
    return BasicClTerm(
        ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=True
    )


class TestCensus:
    def test_cycle_has_one_type(self):
        census = neighbourhood_type_census(cycle_graph(12), 2)
        assert len(census.representatives) == 1
        assert census.class_sizes() == [12]

    def test_path_types_by_boundary_distance(self):
        census = neighbourhood_type_census(path_graph(12), 1)
        # endpoint type, near-endpoint type... at radius 1: endpoints vs rest
        assert len(census.representatives) == 2
        sizes = sorted(census.class_sizes())
        assert sizes == [2, 10]

    def test_radius_zero_single_type_on_plain_graphs(self):
        census = neighbourhood_type_census(grid_graph(3, 3), 0)
        assert len(census.representatives) == 1

    def test_bounded_degree_has_bounded_types(self):
        small = neighbourhood_type_census(bounded_degree_graph(100, 3, seed=1), 1)
        large = neighbourhood_type_census(bounded_degree_graph(400, 3, seed=1), 1)
        # types depend on (degree, radius), not on n
        assert len(large.representatives) <= len(small.representatives) + 6

    def test_assignment_is_total(self):
        g = grid_graph(4, 5)
        census = neighbourhood_type_census(g, 2)
        assert set(census.assignment) == set(g.universe_order)

    def test_negative_radius_rejected(self, path5):
        with pytest.raises(FormulaError):
            neighbourhood_type_census(path5, -1)


class TestPointedBall:
    def test_pointed_isomorphism_distinguishes_centres(self):
        p = path_graph(5)
        endpoint = PointedBall(induced(p, ball(p, [1], 1)), 1)
        middle = PointedBall(induced(p, ball(p, [3], 1)), 3)
        mirrored = PointedBall(induced(p, ball(p, [5], 1)), 5)
        assert endpoint.isomorphic_to(mirrored, limit=8)
        assert not endpoint.isomorphic_to(middle, limit=8)

    def test_invariant_consistent_with_isomorphism(self):
        p = path_graph(7)
        a = PointedBall(induced(p, ball(p, [2], 1)), 2)
        b = PointedBall(induced(p, ball(p, [6], 1)), 6)
        assert a.invariant() == b.invariant()
        assert a.isomorphic_to(b, limit=8)


class TestHanfEvaluation:
    @given(small_graphs(min_vertices=2, max_vertices=7))
    @settings(max_examples=25, deadline=None)
    def test_matches_elementwise_on_random_graphs(self, structure):
        term = degree_term()
        assert evaluate_basic_unary_hanf(structure, term) == evaluate_basic_unary(
            structure, term
        )

    def test_matches_with_quantified_psi(self):
        g = bounded_degree_graph(60, 3, seed=7)
        psi = And(
            E("y1", "y2"), Exists("z", And(E("y2", "z"), Not(Eq("z", "y1"))))
        )
        term = BasicClTerm(
            ("y1", "y2"), psi, 1, 1, frozenset({(1, 2)}), unary=True
        )
        assert evaluate_basic_unary_hanf(g, term) == evaluate_basic_unary(g, term)

    def test_soundness_when_balls_exceed_iso_limit(self):
        """Oversized balls fall back to one-class-per-element: still exact."""
        g = grid_graph(5, 5)
        term = degree_term()
        assert evaluate_basic_unary_hanf(
            g, term, iso_limit=2
        ) == evaluate_basic_unary(g, term)

    def test_type_sharing_actually_happens(self):
        g = cycle_graph(30)
        census = neighbourhood_type_census(g, 1)
        assert len(census.representatives) == 1

    def test_rejects_ground_terms(self, path5):
        ground = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=False
        )
        with pytest.raises(FormulaError):
            evaluate_basic_unary_hanf(path5, ground)
