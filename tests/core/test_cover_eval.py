"""Tests for cover-based evaluation (Definitions 7.4 / 7.5, Section 8.2)."""

import pytest
from hypothesis import given, settings

from repro.core.clterms import CoverTerm
from repro.core.cover_eval import (
    evaluate_basic_cover_unary,
    evaluate_cover_polynomial_unary,
    evaluate_cover_term,
    evaluate_per_cluster,
)
from repro.core.decomposition import decompose_cover_term
from repro.errors import FormulaError
from repro.logic.builder import Rel
from repro.logic.syntax import And, Eq, Exists, Not, Top
from repro.sparse.covers import CoverError, sparse_cover, trivial_cover
from repro.structures.builders import grid_graph, path_graph

from ..conftest import small_graphs

E = Rel("E", 2)


def degree_cover_term(unary=True):
    return CoverTerm(
        variables=("y1", "y2"),
        edges=frozenset({(1, 2)}),
        link_distance=1,
        component_formulas=((frozenset({1, 2}), E("y1", "y2")),),
        unary=unary,
    )


class TestBasicCoverEvaluation:
    def test_degree_term_on_grid(self):
        g = grid_graph(4, 4)
        cover = sparse_cover(g, 2)
        values = evaluate_basic_cover_unary(g, cover, degree_cover_term())
        adjacency = g.adjacency()
        assert values == {a: len(adjacency[a]) for a in g.universe_order}

    def test_local_psi_checked_inside_cluster(self):
        """psi with a quantifier: 'y2 has a second neighbour'.  The cluster
        must contain enough context — guaranteed by the cover property."""
        p = path_graph(8)
        cover = sparse_cover(p, 2)
        psi = And(
            E("y1", "y2"), Exists("z", And(E("y2", "z"), Not(Eq("z", "y1"))))
        )
        term = CoverTerm(
            ("y1", "y2"),
            frozenset({(1, 2)}),
            1,
            ((frozenset({1, 2}), psi),),
            unary=True,
        )
        values = evaluate_basic_cover_unary(p, cover, term)
        # vertex 1: neighbour 2 has second neighbour 3 -> 1
        assert values[1] == 1
        # vertex 2: neighbour 1 has no second neighbour; neighbour 3 has 4
        assert values[2] == 1
        # interior vertex 4: both neighbours have second neighbours
        assert values[4] == 2

    def test_well_definedness_check_passes_for_local_psi(self):
        g = grid_graph(4, 4)
        cover = trivial_cover(g, 3)
        values = evaluate_basic_cover_unary(
            g, cover, degree_cover_term(), check_well_defined=True
        )
        assert sum(values.values()) == len(g.relation("E"))

    def test_ground_term_requires_matching_kind(self):
        g = path_graph(4)
        cover = sparse_cover(g, 1)
        with pytest.raises(FormulaError):
            evaluate_basic_cover_unary(g, cover, degree_cover_term(unary=False))


class TestCoverTermReference:
    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=15, deadline=None)
    def test_reference_matches_pattern_walk(self, structure):
        cover = sparse_cover(structure, 2)
        term = degree_cover_term()
        reference = evaluate_cover_term(structure, cover, term)
        walked = evaluate_basic_cover_unary(structure, cover, term)
        assert reference == walked

    def test_disconnected_cover_term_reference(self):
        p = path_graph(6)
        cover = sparse_cover(p, 2)
        term = CoverTerm(
            variables=("y1", "y2"),
            edges=frozenset(),
            link_distance=1,
            component_formulas=(
                (frozenset({1}), Exists("z", E("y1", "z"))),
                (frozenset({2}), Exists("z", E("y2", "z"))),
            ),
            unary=False,
        )
        value = evaluate_cover_term(p, cover, term)
        # all vertices have a neighbour; pairs at distance > 1: 6*6 pairs
        # minus pairs at distance <= 1 (6 + 2*5 = 16) -> 20
        assert value == 20

    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=12, deadline=None)
    def test_lemma_7_6_with_cover_semantics(self, structure):
        """Decompose a disconnected cover term and evaluate the polynomial
        *with cover semantics*: must equal the reference semantics."""
        cover = sparse_cover(structure, 2)
        term = CoverTerm(
            variables=("y1", "y2"),
            edges=frozenset(),
            link_distance=1,
            component_formulas=(
                (frozenset({1}), Exists("z", E("y1", "z"))),
                (frozenset({2}), Top()),
            ),
            unary=True,
        )
        reference = evaluate_cover_term(structure, cover, term)
        poly = decompose_cover_term(term, psi_radius=1)
        values = evaluate_cover_polynomial_unary(structure, cover, poly)
        assert values == reference


class TestPerClusterAlgorithm:
    def test_matches_semantic_path_on_grid(self):
        g = grid_graph(5, 5)
        term = degree_cover_term()
        # need a k*r = 2*1 = 2 neighbourhood cover
        cover = sparse_cover(g, 2)
        per_cluster = evaluate_per_cluster(g, cover, term)
        semantic = evaluate_basic_cover_unary(g, cover, term)
        assert per_cluster == semantic

    def test_radius_precondition_enforced(self):
        g = grid_graph(3, 3)
        term = CoverTerm(
            variables=("y1", "y2", "y3"),
            edges=frozenset({(1, 2), (2, 3)}),
            link_distance=2,
            component_formulas=((frozenset({1, 2, 3}), Top()),),
            unary=True,
        )
        small = sparse_cover(g, 2)  # needs 3 * 2 = 6
        with pytest.raises(CoverError):
            evaluate_per_cluster(g, small, term)

    @given(small_graphs(min_vertices=2, max_vertices=6))
    @settings(max_examples=15, deadline=None)
    def test_per_cluster_matches_naive(self, structure):
        term = degree_cover_term()
        cover = sparse_cover(structure, 2)
        per_cluster = evaluate_per_cluster(structure, cover, term)
        adjacency = structure.adjacency()
        assert per_cluster == {
            a: len(adjacency[a]) for a in structure.universe_order
        }
