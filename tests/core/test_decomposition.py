"""Tests for the Lemma 6.4 / Lemma 7.6 decomposition recursion.

The key property: the cl-term polynomial produced for a counting term
evaluates (by local ball exploration) to exactly the same number as
brute-force enumeration of the original term — on every structure.
"""

import pytest
from hypothesis import given, settings

from repro.core.clterms import CoverTerm
from repro.core.decomposition import (
    decompose_cover_term,
    decompose_factored_count,
    decompose_pattern,
    is_block_cohesive,
    split_blocks,
)
from repro.core.local_eval import (
    evaluate_polynomial_ground,
    evaluate_polynomial_unary,
)
from repro.errors import FormulaError
from repro.logic.builder import Rel
from repro.logic.semantics import count_solutions, evaluate
from repro.logic.syntax import And, CountTerm, DistAtom, Eq, Exists, Not, Top

from ..conftest import small_graphs

E = Rel("E", 2)
R = Rel("R", 1)


class TestSplitBlocks:
    def test_grouping_by_shared_variables(self):
        body = And(And(E("y1", "y2"), E("y3", "y4")), E("y2", "y1"))
        blocks = split_blocks(body, ("y1", "y2", "y3", "y4"))
        assert len(blocks) == 2

    def test_single_block_when_chained(self):
        body = And(E("y1", "y2"), E("y2", "y3"))
        blocks = split_blocks(body, ("y1", "y2", "y3"))
        assert len(blocks) == 1

    def test_empty_body(self):
        assert split_blocks(Top(), ("y1",)) == [Top()]


class TestCohesion:
    def test_positive_atoms_cohesive(self):
        assert is_block_cohesive(E("y1", "y2"), 1)
        assert is_block_cohesive(And(E("y1", "y2"), E("y2", "y3")), 1)

    def test_triangle_cohesive(self):
        body = And(E("y1", "y2"), And(E("y2", "y3"), E("y3", "y1")))
        assert is_block_cohesive(body, 1)

    def test_negative_atom_alone_not_cohesive(self):
        assert not is_block_cohesive(Not(E("y1", "y2")), 1)

    def test_negative_atom_glued_by_positive(self):
        body = And(E("y1", "y2"), Not(E("y2", "y1")))
        assert is_block_cohesive(body, 1)

    def test_distance_atom_within_link(self):
        assert is_block_cohesive(DistAtom("y1", "y2", 2), 2)
        assert not is_block_cohesive(DistAtom("y1", "y2", 3), 2)


class TestSinglePatternRecursion:
    """decompose_pattern computes exact-pattern counts (Lemma 7.6 shape)."""

    def _exact_pattern_count(self, structure, tup_vars, edges, formulas, link):
        """Brute-force: tuples whose connectivity pattern is exactly G and
        which satisfy the per-component formulas."""
        import itertools

        from repro.structures.gaifman import connectivity_graph

        total = 0
        k = len(tup_vars)
        for tup in itertools.product(structure.universe_order, repeat=k):
            if connectivity_graph(structure, tup, link) != edges:
                continue
            env = dict(zip(tup_vars, tup))
            if all(evaluate(f, structure, env) == 1 for _, f in formulas):
                total += 1
        return total

    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=20, deadline=None)
    def test_two_isolated_components(self, structure):
        variables = ("y1", "y2")
        edges = frozenset()
        formulas = (
            (frozenset({1}), Exists("z", E("y1", "z"))),
            (frozenset({2}), Exists("z", E("y2", "z"))),
        )
        poly = decompose_pattern(
            variables, edges, dict(formulas), psi_radius=1, link_distance=1, unary=False
        )
        got = evaluate_polynomial_ground(structure, poly)
        want = self._exact_pattern_count(structure, variables, edges, formulas, 1)
        assert got == want

    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=15, deadline=None)
    def test_edge_plus_isolated(self, structure):
        variables = ("y1", "y2", "y3")
        edges = frozenset({(1, 2)})
        formulas = (
            (frozenset({1, 2}), E("y1", "y2")),
            (frozenset({3}), Top()),
        )
        poly = decompose_pattern(
            variables, edges, dict(formulas), psi_radius=0, link_distance=1, unary=False
        )
        got = evaluate_polynomial_ground(structure, poly)
        want = self._exact_pattern_count(structure, variables, edges, formulas, 1)
        assert got == want

    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=15, deadline=None)
    def test_unary_variant(self, structure):
        import itertools

        from repro.structures.gaifman import connectivity_graph

        variables = ("y1", "y2")
        edges = frozenset()
        formulas = {
            frozenset({1}): Top(),
            frozenset({2}): Exists("z", E("y2", "z")),
        }
        poly = decompose_pattern(
            variables, edges, formulas, psi_radius=1, link_distance=1, unary=True
        )
        values = evaluate_polynomial_unary(structure, poly)
        for a in structure.universe_order:
            want = 0
            for b in structure.universe_order:
                if connectivity_graph(structure, (a, b), 1) != edges:
                    continue
                if evaluate(formulas[frozenset({2})], structure, {"y2": b}) == 1:
                    want += 1
            assert values[a] == want, a

    def test_component_mismatch_rejected(self):
        with pytest.raises(FormulaError):
            decompose_pattern(
                ("y1", "y2"),
                frozenset(),
                {frozenset({1, 2}): Top()},
                0,
                1,
                False,
            )


class TestFactoredCount:
    """decompose_factored_count == brute-force counting (Lemma 6.4 end-to-end)."""

    BODIES = [
        (("y1", "y2"), And(E("y1", "y2"), Not(Eq("y1", "y2")))),
        (("y1", "y2", "y3"), And(E("y1", "y2"), E("y2", "y3"))),
        (("y1", "y2", "y3", "y4"), And(E("y1", "y2"), E("y3", "y4"))),
        (("y1", "y2", "y3"), And(E("y1", "y2"), Top())),
        (("y1", "y2"), Top()),
    ]

    @pytest.mark.parametrize("variables,body", BODIES)
    @given(structure=small_graphs(min_vertices=1, max_vertices=5))
    @settings(max_examples=12, deadline=None)
    def test_ground_matches_brute_force(self, variables, body, structure):
        poly = decompose_factored_count(
            variables, body, psi_radius=0, link_distance=1, unary=False
        )
        got = evaluate_polynomial_ground(structure, poly)
        want = count_solutions(structure, body, variables)
        assert got == want

    @given(structure=small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=12, deadline=None)
    def test_unary_matches_brute_force(self, structure):
        variables = ("y1", "y2", "y3")
        body = And(E("y1", "y2"), Exists("z", E("y3", "z")))
        poly = decompose_factored_count(
            variables, body, psi_radius=1, link_distance=1, unary=True
        )
        values = evaluate_polynomial_unary(structure, poly)
        ct = CountTerm(("y2", "y3"), body)
        for a in structure.universe_order:
            assert values[a] == evaluate(ct, structure, {"y1": a})

    def test_triangle_body(self, triangle):
        variables = ("y1", "y2", "y3")
        body = And(E("y1", "y2"), And(E("y2", "y3"), E("y3", "y1")))
        poly = decompose_factored_count(variables, body, 0, 1, unary=False)
        assert evaluate_polynomial_ground(triangle, poly) == count_solutions(
            triangle, body, variables
        )

    def test_incohesive_block_rejected(self):
        body = Not(E("y1", "y2"))  # spans two variables without closeness
        with pytest.raises(FormulaError):
            decompose_factored_count(("y1", "y2"), body, 0, 1)

    def test_link_distance_validation(self):
        with pytest.raises(FormulaError):
            decompose_factored_count(("y1",), Top(), 0, 0)


class TestCoverTermDecomposition:
    def test_cover_term_roundtrip(self, sparse20):
        """Lemma 7.6: the decomposed polynomial (evaluated plainly) equals
        the cover term's plain count."""
        term = CoverTerm(
            variables=("y1", "y2"),
            edges=frozenset(),
            link_distance=1,
            component_formulas=(
                (frozenset({1}), Exists("z", E("y1", "z"))),
                (frozenset({2}), Exists("z", E("y2", "z"))),
            ),
            unary=False,
        )
        poly = decompose_cover_term(term, psi_radius=1)
        got = evaluate_polynomial_ground(sparse20, poly)

        # brute-force the Definition 7.5 semantics with plain satisfaction
        import itertools

        from repro.structures.gaifman import connectivity_graph

        want = 0
        for tup in itertools.product(sparse20.universe_order, repeat=2):
            if connectivity_graph(sparse20, tup, 1) != frozenset():
                continue
            env = {"y1": tup[0], "y2": tup[1]}
            if all(
                evaluate(f, sparse20, env) == 1
                for _, f in term.component_formulas
            ):
                want += 1
        assert got == want


class TestTheorem68:
    """Basic local sentences become 'g-hat >= 1' statements (Theorem 6.8)."""

    @given(small_graphs(min_vertices=1, max_vertices=6))
    @settings(max_examples=25, deadline=None)
    def test_translation_equivalence(self, structure):
        from repro.core.decomposition import basic_local_sentence_polynomial
        from repro.logic.locality import ScatteredSentence
        from repro.logic.semantics import satisfies

        sentence = ScatteredSentence(
            count=2,
            min_distance=2,
            variable="y",
            psi=Exists("z", E("y", "z")),
        )
        poly = basic_local_sentence_polynomial(sentence, psi_radius=1)
        from repro.core.local_eval import evaluate_polynomial_ground

        value = evaluate_polynomial_ground(structure, poly)
        assert (value >= 1) == satisfies(structure, sentence.build())
        # the count itself is exact, not just its positivity
        witnesses = 0
        import itertools

        from repro.structures.gaifman import distance

        for a, b in itertools.product(structure.universe_order, repeat=2):
            if distance(structure, a, b) <= 2:
                continue
            if satisfies(structure, Exists("z", E("y", "z")), {"y": a}) and satisfies(
                structure, Exists("z", E("y", "z")), {"y": b}
            ):
                witnesses += 1
        assert value == witnesses

    def test_rejects_non_scattered_input(self):
        from repro.core.decomposition import basic_local_sentence_polynomial

        with pytest.raises(FormulaError):
            basic_local_sentence_polynomial("not a sentence")
