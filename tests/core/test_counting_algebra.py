"""Property-based differential tests pinning the Lemma 6.4 counting algebra.

Lemma 6.4 reduces counting over arbitrary formulas to counting over
connected pieces through three identities, which must hold *exactly* on
every structure:

* **negation complement**:  #(x-bar). ¬φ  =  n^k − #(x-bar). φ
* **inclusion-exclusion**:  #(x-bar). (φ ∨ ψ)
                            =  #φ + #ψ − #(x-bar). (φ ∧ ψ)
* **component factorisation**: for φ(x-bar), ψ(y-bar) over *disjoint*
  variable tuples,  #(x-bar y-bar). (φ ∧ ψ)  =  #(x-bar). φ · #(y-bar). ψ

The cases are drawn from a seeded ``random.Random`` (deterministic, no
hypothesis dependency in the loop): ~200 random (structure, formula)
pairs, each identity checked on both the FOC1 engine and the brute-force
oracle, plus the engines checked against each other.
"""

import random

import pytest

from repro.core.baseline import BruteForceEvaluator
from repro.core.evaluator import Foc1Evaluator
from repro.logic.syntax import And, Atom, Eq, Exists, Not, Or
from repro.structures.builders import graph_structure

SEED = 20260806

#: (structures, formulas-per-structure) grids sized so each test runs
#: ~200 generated cases in total.
N_STRUCTURES = 20
N_FORMULAS = 10


def random_structure(rng: random.Random):
    n = rng.randint(2, 7)
    vertices = list(range(n))
    possible = [(u, v) for u in vertices for v in vertices if u < v]
    edges = [e for e in possible if rng.random() < rng.uniform(0.1, 0.6)]
    return graph_structure(vertices, edges)


def random_formula(rng: random.Random, variables, depth: int = 2):
    """A random FO formula over ``variables`` (E-atoms, =, ¬, ∧, ∨, ∃)."""
    if depth <= 0 or rng.random() < 0.3:
        u, v = rng.choice(variables), rng.choice(variables)
        if rng.random() < 0.25:
            return Eq(u, v)
        return Atom("E", (u, v))
    kind = rng.randrange(4)
    if kind == 0:
        return Not(random_formula(rng, variables, depth - 1))
    if kind == 1:
        return And(
            random_formula(rng, variables, depth - 1),
            random_formula(rng, variables, depth - 1),
        )
    if kind == 2:
        return Or(
            random_formula(rng, variables, depth - 1),
            random_formula(rng, variables, depth - 1),
        )
    bound = rng.choice(variables)
    return Exists(bound, random_formula(rng, variables, depth - 1))


@pytest.fixture(scope="module")
def engines():
    return (
        Foc1Evaluator(check_fragment=False),
        BruteForceEvaluator(),
    )


def _cases(seed_salt: int):
    rng = random.Random(SEED + seed_salt)
    for _ in range(N_STRUCTURES):
        structure = random_structure(rng)
        for _ in range(N_FORMULAS):
            yield rng, structure


class TestNegationComplement:
    def test_complement_identity(self, engines):
        for rng, structure in _cases(1):
            variables = rng.sample(["x", "y", "z"], rng.randint(1, 2))
            phi = random_formula(rng, variables)
            n = structure.order()
            for engine in engines:
                positive = engine.count(structure, phi, variables)
                negative = engine.count(structure, Not(phi), variables)
                assert positive + negative == n ** len(variables), (
                    f"complement identity failed for {phi!r} on {structure!r}"
                )


class TestInclusionExclusion:
    def test_disjunction_identity(self, engines):
        for rng, structure in _cases(2):
            variables = rng.sample(["x", "y"], rng.randint(1, 2))
            phi = random_formula(rng, variables)
            psi = random_formula(rng, variables)
            for engine in engines:
                disj = engine.count(structure, Or(phi, psi), variables)
                conj = engine.count(structure, And(phi, psi), variables)
                a = engine.count(structure, phi, variables)
                b = engine.count(structure, psi, variables)
                assert disj == a + b - conj, (
                    f"inclusion-exclusion failed for {phi!r} | {psi!r} "
                    f"on {structure!r}"
                )


class TestComponentFactorisation:
    def test_disjoint_conjunction_factorises(self, engines):
        for rng, structure in _cases(3):
            phi = random_formula(rng, ["x"], depth=1)
            psi = random_formula(rng, ["y"], depth=1)
            for engine in engines:
                joint = engine.count(structure, And(phi, psi), ["x", "y"])
                left = engine.count(structure, phi, ["x"])
                right = engine.count(structure, psi, ["y"])
                assert joint == left * right, (
                    f"factorisation failed for {phi!r} & {psi!r} "
                    f"on {structure!r}"
                )


class TestEnginesAgree:
    def test_engine_matches_brute_force(self, engines):
        foc1, brute = engines
        for rng, structure in _cases(4):
            variables = rng.sample(["x", "y", "z"], rng.randint(1, 3))
            phi = random_formula(rng, variables)
            assert foc1.count(structure, phi, variables) == brute.count(
                structure, phi, variables
            ), f"engines disagree on {phi!r} over {structure!r}"
