"""Tests for the brute-force baseline evaluator's API behaviour."""

import pytest

from repro.core.baseline import BruteForceEvaluator
from repro.core.evaluator import Foc1Evaluator
from repro.core.query import Foc1Query
from repro.errors import EvaluationError, FragmentError
from repro.logic.builder import Rel, count
from repro.logic.parser import parse_formula, parse_term
from repro.logic.syntax import Eq

E = Rel("E", 2)


@pytest.fixture
def engine():
    return BruteForceEvaluator()


class TestApi:
    def test_model_check(self, engine, triangle):
        assert engine.model_check(triangle, parse_formula("exists x. exists y. E(x, y)"))
        with pytest.raises(EvaluationError):
            engine.model_check(triangle, parse_formula("E(x, y)"))

    def test_ground_term(self, engine, triangle):
        assert engine.ground_term_value(triangle, parse_term("#(x, y). E(x, y)")) == 6
        with pytest.raises(EvaluationError):
            engine.ground_term_value(triangle, parse_term("#(y). E(x, y)"))

    def test_unary_values(self, engine, path5):
        values = engine.unary_term_values(path5, parse_term("#(y). E(x, y)"), "x")
        assert values == {1: 1, 2: 2, 3: 2, 4: 2, 5: 1}
        restricted = engine.unary_term_values(
            path5, parse_term("#(y). E(x, y)"), "x", elements=[2]
        )
        assert restricted == {2: 2}

    def test_count_and_solutions(self, engine, triangle):
        phi = parse_formula("E(x, y)")
        assert engine.count(triangle, phi, ["x", "y"]) == 6
        assert len(list(engine.solutions(triangle, phi, ["x", "y"]))) == 6

    def test_query(self, engine, triangle):
        query = Foc1Query(
            head_variables=("x",),
            head_terms=(count(["y"], E("x", "y")),),
            condition=Eq("x", "x"),
        )
        assert sorted(engine.evaluate_query(triangle, query)) == [
            (1, 2),
            (2, 2),
            (3, 2),
        ]

    def test_full_foc_supported(self, triangle):
        # the naive semantics handles full FOC(P) once the fragment
        # check — on by default, to match Foc1Evaluator — is disabled
        bad = parse_formula(
            "exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))"
        )
        engine = BruteForceEvaluator(check_fragment=False)
        assert engine.model_check(triangle, bad) is True


#: An FOC(P) sentence outside FOC1 (the counting terms jointly carry two
#: free variables) and an in-fragment one, for the parity tests below.
OUT_OF_FRAGMENT = "exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))"
IN_FRAGMENT = "exists x. @eq(#(z). E(x, z), 2)"


class TestOracleParity:
    """The oracle and the subject engine accept/reject the same inputs, so
    differential tests never silently compare them on an input that only
    one of them validated."""

    def test_both_reject_out_of_fragment(self, triangle):
        bad = parse_formula(OUT_OF_FRAGMENT)
        for engine in (BruteForceEvaluator(), Foc1Evaluator()):
            with pytest.raises(FragmentError):
                engine.model_check(triangle, bad)

    def test_both_accept_out_of_fragment_when_disabled(self, triangle):
        bad = parse_formula(OUT_OF_FRAGMENT)
        brute = BruteForceEvaluator(check_fragment=False)
        clever = Foc1Evaluator(check_fragment=False)
        assert brute.model_check(triangle, bad) == clever.model_check(triangle, bad)

    def test_both_accept_in_fragment(self, triangle):
        good = parse_formula(IN_FRAGMENT)
        assert BruteForceEvaluator().model_check(
            triangle, good
        ) == Foc1Evaluator().model_check(triangle, good)

    def test_count_rejections_match(self, triangle):
        phi = parse_formula("E(x, y)")
        for engine in (BruteForceEvaluator(), Foc1Evaluator()):
            with pytest.raises(EvaluationError):
                engine.count(triangle, phi, ["x"])  # y not listed
            with pytest.raises(EvaluationError):
                engine.count(triangle, phi, ["x", "y", "x"])  # duplicate

    def test_term_rejections_match(self, triangle):
        bad_term = parse_term("#(z). @eq(#(w). E(z, w), #(w). E(x, w))")
        for engine in (BruteForceEvaluator(), Foc1Evaluator()):
            with pytest.raises(FragmentError):
                engine.unary_term_values(triangle, bad_term, "x")

    def test_solutions_rejections_match(self, triangle):
        phi = parse_formula("E(x, y)")
        for engine in (BruteForceEvaluator(), Foc1Evaluator()):
            with pytest.raises(EvaluationError):
                list(engine.solutions(triangle, phi, ["x"]))
