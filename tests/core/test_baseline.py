"""Tests for the brute-force baseline evaluator's API behaviour."""

import pytest

from repro.core.baseline import BruteForceEvaluator
from repro.core.query import Foc1Query
from repro.errors import EvaluationError
from repro.logic.builder import Rel, count
from repro.logic.parser import parse_formula, parse_term
from repro.logic.syntax import Eq

E = Rel("E", 2)


@pytest.fixture
def engine():
    return BruteForceEvaluator()


class TestApi:
    def test_model_check(self, engine, triangle):
        assert engine.model_check(triangle, parse_formula("exists x. exists y. E(x, y)"))
        with pytest.raises(EvaluationError):
            engine.model_check(triangle, parse_formula("E(x, y)"))

    def test_ground_term(self, engine, triangle):
        assert engine.ground_term_value(triangle, parse_term("#(x, y). E(x, y)")) == 6
        with pytest.raises(EvaluationError):
            engine.ground_term_value(triangle, parse_term("#(y). E(x, y)"))

    def test_unary_values(self, engine, path5):
        values = engine.unary_term_values(path5, parse_term("#(y). E(x, y)"), "x")
        assert values == {1: 1, 2: 2, 3: 2, 4: 2, 5: 1}
        restricted = engine.unary_term_values(
            path5, parse_term("#(y). E(x, y)"), "x", elements=[2]
        )
        assert restricted == {2: 2}

    def test_count_and_solutions(self, engine, triangle):
        phi = parse_formula("E(x, y)")
        assert engine.count(triangle, phi, ["x", "y"]) == 6
        assert len(list(engine.solutions(triangle, phi, ["x", "y"]))) == 6

    def test_query(self, engine, triangle):
        query = Foc1Query(
            head_variables=("x",),
            head_terms=(count(["y"], E("x", "y")),),
            condition=Eq("x", "x"),
        )
        assert sorted(engine.evaluate_query(triangle, query)) == [
            (1, 2),
            (2, 2),
            (3, 2),
        ]

    def test_full_foc_supported(self, engine, triangle):
        # the baseline does not restrict to FOC1
        bad = parse_formula(
            "exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))"
        )
        assert engine.model_check(triangle, bad) is True
