"""Tests for incremental maintenance under updates (open question 2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clterms import BasicClTerm
from repro.core.incremental import IncrementalUnaryCache
from repro.errors import ArityError, FormulaError, SignatureError, UniverseError
from repro.logic.builder import Rel
from repro.logic.syntax import And
from repro.sparse.classes import bounded_degree_graph
from repro.structures.builders import graph_structure, path_graph

E = Rel("E", 2)


def degree_term():
    return BasicClTerm(
        ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=True
    )


def two_step_term():
    psi = And(E("y1", "y2"), E("y2", "y3"))
    return BasicClTerm(
        ("y1", "y2", "y3"), psi, 0, 1, frozenset({(1, 2), (2, 3)}), unary=True
    )


class TestBasics:
    def test_initial_values(self, path5):
        cache = IncrementalUnaryCache(path5, degree_term())
        assert cache.value(1) == 1 and cache.value(3) == 2

    def test_insert_updates_affected(self, path5):
        cache = IncrementalUnaryCache(path5, degree_term())
        cache.insert("E", (1, 5))
        cache.insert("E", (5, 1))
        assert cache.value(1) == 2 and cache.value(5) == 2
        cache.verify()

    def test_delete_updates_affected(self, path5):
        cache = IncrementalUnaryCache(path5, degree_term())
        cache.delete("E", (2, 3))
        cache.delete("E", (3, 2))
        assert cache.value(2) == 1 and cache.value(3) == 1
        cache.verify()

    def test_noop_updates_ignored(self, path5):
        cache = IncrementalUnaryCache(path5, degree_term())
        cache.insert("E", (1, 2))  # already present
        cache.delete("E", (1, 5))  # already absent
        assert cache.stats.updates == 0
        cache.verify()

    def test_input_validation(self, path5):
        cache = IncrementalUnaryCache(path5, degree_term())
        with pytest.raises(SignatureError):
            cache.insert("Nope", (1, 2))
        with pytest.raises(ArityError):
            cache.insert("E", (1,))
        with pytest.raises(UniverseError):
            cache.insert("E", (1, 99))
        ground = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=False
        )
        with pytest.raises(FormulaError):
            IncrementalUnaryCache(path5, ground)


class TestRandomUpdateSequences:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_degree_term_stays_in_sync(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 10)
        structure = graph_structure(
            range(1, n + 1),
            [
                (u, v)
                for u in range(1, n + 1)
                for v in range(u + 1, n + 1)
                if rng.random() < 0.3
            ],
        )
        cache = IncrementalUnaryCache(structure, degree_term())
        for _ in range(8):
            u, v = rng.randint(1, n), rng.randint(1, n)
            if u == v:
                continue
            if rng.random() < 0.5:
                cache.insert("E", (u, v))
            else:
                cache.delete("E", (u, v))
        cache.verify()

    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_width3_term_stays_in_sync(self, seed):
        rng = random.Random(seed)
        structure = bounded_degree_graph(12, 3, seed=seed % 100)
        cache = IncrementalUnaryCache(structure, two_step_term())
        nodes = list(structure.universe_order)
        for _ in range(6):
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u == v:
                continue
            if rng.random() < 0.5:
                cache.insert("E", (u, v))
                cache.insert("E", (v, u))
            else:
                cache.delete("E", (u, v))
                cache.delete("E", (v, u))
        cache.verify()


class TestLocality:
    def test_updates_touch_few_elements_on_long_paths(self):
        structure = path_graph(200)
        cache = IncrementalUnaryCache(structure, degree_term())
        cache.delete("E", (100, 101))
        cache.delete("E", (101, 100))
        cache.verify()
        # dependency radius for the degree term is 1 + 0 = 1; two updates,
        # each touching a ball of <= 3 elements in old+new structures.
        assert cache.stats.recomputed_elements <= 12
        assert cache.stats.recompute_ratio(structure.order()) < 0.05


class TestRecomputeRatioGuards:
    def test_ratio_is_zero_when_order_is_zero(self):
        """Regression: ``recomputed / (updates * order)`` crashed with
        ZeroDivisionError whenever the caller passed ``order == 0``."""
        from repro.core.incremental import UpdateStats

        stats = UpdateStats(updates=3, recomputed_elements=5)
        assert stats.recompute_ratio(0) == 0.0

    def test_ratio_is_zero_before_any_update(self):
        from repro.core.incremental import UpdateStats

        assert UpdateStats().recompute_ratio(10) == 0.0

    def test_fresh_cache_reports_zero_ratio_at_any_order(self):
        """An untouched cache must report ratio 0 even when asked about a
        hypothetical order of 0 (the empty-universe convention)."""
        structure = path_graph(3)
        cache = IncrementalUnaryCache(structure, degree_term())
        assert cache.stats.recompute_ratio(structure.order()) == 0.0
        assert cache.stats.recompute_ratio(0) == 0.0
