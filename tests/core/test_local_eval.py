"""Tests for local (ball-exploration) evaluation of basic cl-terms
(Remark 6.3), differential-tested against the naive semantics."""

import pytest
from hypothesis import given, settings

from repro.core.clterms import BasicClTerm, ClPolynomial
from repro.core.local_eval import (
    evaluate_basic_ground,
    evaluate_basic_unary,
    evaluate_polynomial_ground,
    evaluate_polynomial_unary,
    pattern_tuples,
)
from repro.errors import FormulaError
from repro.logic.builder import Rel
from repro.logic.semantics import evaluate
from repro.logic.syntax import And, Eq, Exists, Not, Top
from repro.structures.builders import graph_structure, grid_graph, path_graph
from repro.structures.gaifman import connectivity_graph

from ..conftest import small_graphs

E = Rel("E", 2)


class TestPatternTuples:
    def test_exact_pattern_on_path(self):
        p = path_graph(6)
        edges = frozenset({(1, 2), (2, 3)})
        tuples = list(pattern_tuples(p, 1, 3, edges, 1))
        for tup in tuples:
            assert connectivity_graph(p, tup, 1) == edges
        assert (1, 2, 3) in tuples

    def test_pattern_excludes_extra_closeness(self):
        # pattern path 1-2, 2-3 but NOT 1-3: on a triangle, no 3-tuple of
        # distinct adjacent vertices qualifies (everything is close).
        t = graph_structure([1, 2, 3], [(1, 2), (2, 3), (3, 1)])
        edges = frozenset({(1, 2), (2, 3)})
        assert list(pattern_tuples(t, 1, 3, edges, 1)) == []

    def test_repeated_elements_allowed(self):
        p = path_graph(4)
        clique = frozenset({(1, 2)})
        tuples = list(pattern_tuples(p, 2, 2, clique, 1))
        assert (2, 2) in tuples  # dist 0 <= 1 forces the pattern edge

    @given(small_graphs(min_vertices=2, max_vertices=6))
    @settings(max_examples=25, deadline=None)
    def test_every_emitted_tuple_has_the_pattern(self, structure):
        edges = frozenset({(1, 2)})
        first = structure.universe_order[0]
        for tup in pattern_tuples(structure, first, 2, edges, 1):
            assert connectivity_graph(structure, tup, 1) == edges

    def test_disconnected_pattern_rejected(self):
        p = path_graph(4)
        with pytest.raises(FormulaError):
            list(pattern_tuples(p, 1, 3, frozenset({(1, 2)}), 1))


def _naive_unary(structure, term):
    ct = term.count_term()
    return {
        a: evaluate(ct, structure, {term.variables[0]: a})
        for a in structure.universe_order
    }


class TestBasicEvaluation:
    @given(small_graphs(min_vertices=2, max_vertices=6))
    @settings(max_examples=30, deadline=None)
    def test_unary_matches_naive(self, structure):
        term = BasicClTerm(
            ("y1", "y2"),
            E("y1", "y2"),
            psi_radius=0,
            link_distance=1,
            edges=frozenset({(1, 2)}),
            unary=True,
        )
        assert evaluate_basic_unary(structure, term) == _naive_unary(structure, term)

    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=20, deadline=None)
    def test_width3_matches_naive(self, structure):
        term = BasicClTerm(
            ("y1", "y2", "y3"),
            And(E("y1", "y2"), E("y2", "y3")),
            psi_radius=0,
            link_distance=1,
            edges=frozenset({(1, 2), (2, 3)}),
            unary=True,
        )
        assert evaluate_basic_unary(structure, term) == _naive_unary(structure, term)

    def test_ground_is_sum_of_unary(self):
        g = grid_graph(4, 4)
        ground = BasicClTerm(
            ("y1", "y2"),
            E("y1", "y2"),
            0,
            1,
            frozenset({(1, 2)}),
            unary=False,
        )
        unary = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=True
        )
        total = evaluate_basic_ground(g, ground)
        assert total == sum(evaluate_basic_unary(g, unary).values())
        assert total == len(g.relation("E"))

    def test_local_psi_with_quantifier(self):
        """psi = 'y2 has a neighbour besides y1' is 1-local around (y1,y2)."""
        p = path_graph(6)
        psi = Exists("z", And(E("y2", "z"), Not(Eq("z", "y1"))))
        term = BasicClTerm(
            ("y1", "y2"), psi, psi_radius=1, link_distance=1,
            edges=frozenset({(1, 2)}), unary=True,
        )
        local = evaluate_basic_unary(p, term, evaluate_psi_locally=True)
        globally = evaluate_basic_unary(p, term, evaluate_psi_locally=False)
        assert local == globally == _naive_unary(p, term)

    def test_unary_flag_enforced(self, path5):
        ground = BasicClTerm(
            ("y1",), Top(), 0, 1, frozenset(), unary=False
        )
        with pytest.raises(FormulaError):
            evaluate_basic_unary(path5, ground)
        unary = BasicClTerm(("y1",), Top(), 0, 1, frozenset(), unary=True)
        with pytest.raises(FormulaError):
            evaluate_basic_ground(path5, unary)

    def test_restricted_elements(self, path5):
        term = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=True
        )
        values = evaluate_basic_unary(path5, term, elements=[1, 3])
        assert set(values) == {1, 3}
        assert values[1] == 1 and values[3] == 2


class TestPolynomialEvaluation:
    def test_ground_polynomial(self):
        g = grid_graph(3, 3)
        edge_count = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=False
        )
        node_count = BasicClTerm(("y1",), Top(), 0, 1, frozenset(), unary=False)
        poly = (
            ClPolynomial.of(edge_count)
            - ClPolynomial.of(node_count) * ClPolynomial.constant(2)
        )
        expected = len(g.relation("E")) - 2 * g.order()
        assert evaluate_polynomial_ground(g, poly) == expected

    def test_unary_polynomial_mixes_ground_factors(self):
        p = path_graph(5)
        degree = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=True
        )
        nodes = BasicClTerm(("y1",), Top(), 0, 1, frozenset(), unary=False)
        poly = ClPolynomial.of(degree) * ClPolynomial.of(nodes)
        values = evaluate_polynomial_unary(p, poly)
        assert values[1] == 1 * 5 and values[3] == 2 * 5

    def test_unary_in_ground_position_rejected(self, path5):
        degree = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=True
        )
        with pytest.raises(FormulaError):
            evaluate_polynomial_ground(path5, ClPolynomial.of(degree))
