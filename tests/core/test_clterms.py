"""Tests for cl-terms (Definition 6.2) and the polynomial algebra."""

import pytest

from repro.core.clterms import BasicClTerm, ClPolynomial, CoverTerm
from repro.errors import FormulaError
from repro.logic.builder import Rel
from repro.logic.semantics import evaluate
from repro.logic.syntax import Atom, Top

E = Rel("E", 2)


def degree_term(unary=True):
    """u(y1) = #(y2).(E(y1,y2) ∧ delta_connected)."""
    return BasicClTerm(
        variables=("y1", "y2"),
        psi=E("y1", "y2"),
        psi_radius=0,
        link_distance=1,
        edges=frozenset({(1, 2)}),
        unary=unary,
    )


class TestBasicClTerm:
    def test_width_and_radius(self):
        term = degree_term()
        assert term.width == 2
        assert term.free_variable == "y1"
        # R = r + (k-1) * D = 0 + 1*1
        assert term.evaluation_radius() == 1

    def test_paper_convention_link_distance(self):
        term = BasicClTerm.paper(
            ("y1", "y2"), E("y1", "y2"), radius=2, edges=[(1, 2)], unary=False
        )
        assert term.link_distance == 5  # 2r+1

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(FormulaError):
            BasicClTerm(
                ("y1", "y2", "y3"),
                Top(),
                0,
                1,
                frozenset({(1, 2)}),
                unary=False,
            )

    def test_psi_free_variables_checked(self):
        with pytest.raises(FormulaError):
            BasicClTerm(("y1",), E("y1", "zz"), 0, 1, frozenset(), unary=True)

    def test_repeated_variables_rejected(self):
        with pytest.raises(FormulaError):
            BasicClTerm(("y1", "y1"), Top(), 0, 1, frozenset({(1, 2)}), False)

    def test_count_term_semantics(self, triangle):
        term = degree_term(unary=True)
        ct = term.count_term()
        # on a triangle every vertex has 2 neighbours at distance exactly <=1
        value = evaluate(ct, triangle, {"y1": 1})
        # tuples (y2) with E(1,y2) and dist(1,y2) <= 1: y2 in {2,3}
        assert value == 2

    def test_width_one(self, triangle):
        term = BasicClTerm(("y1",), E("y1", "y1"), 0, 1, frozenset(), unary=True)
        assert evaluate(term.count_term(), triangle, {"y1": 1}) == 0


class TestClPolynomial:
    def test_constant_arithmetic(self):
        two = ClPolynomial.constant(2)
        three = ClPolynomial.constant(3)
        assert (two + three).evaluate(lambda t: 0) == 5
        assert (two * three).evaluate(lambda t: 0) == 6
        assert (two - three).evaluate(lambda t: 0) == -1

    def test_like_terms_merge(self):
        term = ClPolynomial.of(degree_term())
        doubled = term + term
        assert len(doubled.monomials) == 1
        assert doubled.monomials[0][1] == 2

    def test_cancellation(self):
        term = ClPolynomial.of(degree_term())
        zero = term - term
        assert zero.monomials == ()
        assert zero.evaluate(lambda t: 99) == 0

    def test_product_of_basics(self):
        a = ClPolynomial.of(degree_term())
        product = a * a
        assert len(product.monomials) == 1
        factors, coefficient = product.monomials[0]
        assert len(factors) == 2 and coefficient == 1

    def test_evaluate_memoises_valuation(self):
        calls = []

        def valuation(term):
            calls.append(term)
            return 2

        poly = ClPolynomial.of(degree_term()) * ClPolynomial.of(degree_term())
        assert poly.evaluate(valuation) == 4
        assert len(calls) == 1  # the duplicate factor is computed once

    def test_width_and_radius_summaries(self):
        poly = ClPolynomial.of(degree_term()) + ClPolynomial.constant(5)
        assert poly.max_width() == 2
        assert poly.max_radius() == 0
        assert ClPolynomial.constant(1).max_width() == 0


class TestCoverTerm:
    def test_component_validation(self):
        # G = two isolated vertices: components {1}, {2}
        term = CoverTerm(
            variables=("y1", "y2"),
            edges=frozenset(),
            link_distance=1,
            component_formulas=(
                (frozenset({1}), Atom("R", ("y1",))),
                (frozenset({2}), Atom("R", ("y2",))),
            ),
            unary=False,
        )
        assert not term.is_basic()
        assert term.width == 2

    def test_wrong_components_rejected(self):
        with pytest.raises(FormulaError):
            CoverTerm(
                ("y1", "y2"),
                frozenset({(1, 2)}),
                1,
                ((frozenset({1}), Top()), (frozenset({2}), Top())),
                False,
            )

    def test_component_formula_variable_scope(self):
        with pytest.raises(FormulaError):
            CoverTerm(
                ("y1", "y2"),
                frozenset(),
                1,
                (
                    (frozenset({1}), Atom("R", ("y2",))),  # wrong variable
                    (frozenset({2}), Top()),
                ),
                False,
            )

    def test_body_builds(self):
        term = CoverTerm(
            ("y1",),
            frozenset(),
            2,
            ((frozenset({1}), Atom("R", ("y1",))),),
            unary=True,
        )
        assert term.is_basic()
        built = term.count_term()
        assert built.variables == ()
