"""Regression tests for the evaluator's memo lifetime contract.

The hazard: the engine's memo tables key on ``id(node)``.  CPython recycles
ids, so a memo entry that outlives its AST node can alias a structurally
*different* node allocated later at the same address — a silent wrong
answer.  The contract (documented on ``_Session``) is therefore:

1. every memoised node is pinned alive in ``_pins`` for as long as its
   memo entry exists, and the two are dropped together (``_reset_memos``);
2. sessions are scoped to one public engine call, so repeated queries do
   not accumulate pinned ASTs across calls.
"""

import gc
import weakref

import pytest

from repro.core.evaluator import Foc1Evaluator, _Session
from repro.logic.parser import parse_formula
from repro.logic.predicates import standard_collection
from repro.structures.builders import path_graph


@pytest.fixture
def engine():
    return Foc1Evaluator()


def _session(structure):
    return _Session(
        structure,
        standard_collection(),
        use_factoring=True,
        use_guards=True,
    )


class TestPinsStayInSyncWithMemos:
    def test_memoised_nodes_are_pinned(self):
        session = _session(path_graph(6))
        phi = parse_formula("E(x, y) & E(y, z)")
        session.free(phi)
        session.free_sorted(phi)
        session._conjuncts(phi)
        assert id(phi) in session._pins
        for key in session._free_memo:
            assert key in session._pins
        for key in session._free_sorted_memo:
            assert key in session._pins
        for key in session._conjunct_memo:
            assert key in session._pins

    def test_count_memo_pins_its_body(self):
        session = _session(path_graph(6))
        phi = parse_formula("E(x, y)")
        session.count(("y",), phi, {"x": 1})
        # Memo keys are canonical text; the key-text cache maps the node.
        assert (id(phi), ("y",)) in session._count_key_memo
        assert session._count_memo
        assert id(phi) in session._pins

    def test_count_memo_keys_are_alpha_canonical(self):
        """Alpha-variants of the same count share one memo entry."""
        session = _session(path_graph(6))
        first = parse_formula("E(x, y)")
        second = parse_formula("E(x, z)")
        session.count(("y",), first, {"x": 1})
        session.count(("z",), second, {"x": 1})
        assert len(session._count_memo) == 1

    def test_holds_memo_keys_are_alpha_canonical(self):
        """Bound-variable renamings of the same sentence share one entry."""
        session = _session(path_graph(6))
        first = parse_formula("exists y. E(x, y)")
        second = parse_formula("exists w. E(x, w)")
        session.holds(first, {"x": 1})
        entries = len(session._holds_memo)
        # The alpha-variant is a pure memo hit: no new entries appear.
        session.holds(second, {"x": 1})
        assert len(session._holds_memo) == entries
        assert ("exists _b0. E(x, _b0)", (("x", 1),)) in session._holds_memo

    def test_holds_memo_pins_its_formula(self):
        session = _session(path_graph(6))
        phi = parse_formula("E(x, y)")
        session.holds(phi, {"x": 1, "y": 2})
        assert id(phi) in session._pins

    def test_reset_drops_memos_and_pins_together(self):
        session = _session(path_graph(6))
        phi = parse_formula("E(x, y) & E(y, z)")
        session.free(phi)
        session.holds(phi, {"x": 1, "y": 2, "z": 3})
        session._reset_memos()
        assert not session._pins
        assert not session._free_memo
        assert not session._free_sorted_memo
        assert not session._conjunct_memo
        assert not session._holds_memo
        assert not session._count_memo
        assert not session._canon_memo
        assert not session._count_key_memo
        assert not session._forall_memo
        assert not session._overlap_memo

    def test_pinned_node_survives_caller_dropping_it(self):
        """The id-recycling scenario: the caller drops its reference, the
        session's memo must keep the node alive (not just the id)."""
        session = _session(path_graph(6))
        phi = parse_formula("E(x, y)")
        ref = weakref.ref(phi)
        session.holds(phi, {"x": 1, "y": 2})
        del phi
        gc.collect()
        assert ref() is not None  # pinned: id cannot be recycled

    def test_memoised_answers_stay_correct_after_caller_drops_ast(self):
        session = _session(path_graph(6))
        # Two structurally different formulas evaluated in sequence; if the
        # first's memo entry could alias a recycled id, the second might
        # read the wrong cached truth value.
        first = parse_formula("E(x, y)")
        assert session.holds(first, {"x": 1, "y": 2}) is True
        del first
        gc.collect()
        second = parse_formula("!E(x, y)")
        assert session.holds(second, {"x": 1, "y": 2}) is False


class TestSessionScopedMemory:
    def test_repeated_evaluation_does_not_accumulate_asts(self, engine):
        """Repeated public calls must not grow memory: sessions (and their
        pinned ASTs) are per call and released afterwards."""
        structure = path_graph(12)
        refs = []
        for _ in range(20):
            phi = parse_formula("exists y. E(x, y) & E(y, z)")
            refs.append(weakref.ref(phi))
            engine.count(structure, phi, ["x", "z"])
            del phi
        gc.collect()
        assert all(ref() is None for ref in refs)

    def test_engine_holds_no_session_state_between_calls(self, engine):
        structure = path_graph(8)
        phi = parse_formula("forall x. exists y. E(x, y)")
        ref = weakref.ref(phi)
        assert engine.model_check(structure, phi) is True
        del phi
        gc.collect()
        assert ref() is None

    def test_repeated_calls_agree(self, engine):
        structure = path_graph(10)
        results = set()
        for _ in range(5):
            phi = parse_formula("E(x, y) & E(y, z)")
            results.add(engine.count(structure, phi, ["x", "y", "z"]))
        assert len(results) == 1
