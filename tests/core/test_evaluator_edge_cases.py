"""Edge-case tests for the engine: exotic signatures, distance atoms,
zero-ary relations, deep nesting, and adversarial shapes."""

import pytest

from repro.core.baseline import BruteForceEvaluator
from repro.core.evaluator import Foc1Evaluator
from repro.logic.parser import parse_formula, parse_term
from repro.logic.predicates import NumericalPredicate, standard_collection
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    CountTerm,
    DistAtom,
    Eq,
    Exists,
    Not,
    Top,
)
from repro.structures.builders import graph_structure, path_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure

FAST = Foc1Evaluator()
BRUTE = BruteForceEvaluator()


class TestExoticSignatures:
    @pytest.fixture
    def ternary(self):
        sig = Signature.of(T=3, Flag=0, Mark=1)
        return Structure(
            sig,
            [1, 2, 3, 4],
            {"T": [(1, 2, 3), (2, 3, 4), (1, 1, 2)], "Flag": [()], "Mark": [(2,)]},
        )

    def test_zero_ary_atom(self, ternary):
        assert FAST.model_check(ternary, Atom("Flag", ()))
        assert not FAST.model_check(ternary, Not(Atom("Flag", ())))

    def test_ternary_counting(self, ternary):
        term = CountTerm(("x", "y", "z"), Atom("T", ("x", "y", "z")))
        assert FAST.ground_term_value(ternary, term) == 3

    def test_ternary_guarded_count_with_repeats(self, ternary):
        # atoms with a repeated variable: T(x, x, y)
        phi = Atom("T", ("x", "x", "y"))
        assert FAST.count(ternary, phi, ["x", "y"]) == BRUTE.count(
            ternary, phi, ["x", "y"]
        )
        assert FAST.count(ternary, phi, ["x", "y"]) == 1  # (1,1,2)

    def test_unary_relation_guard(self, ternary):
        phi = And(Atom("Mark", ("x",)), Exists("y", Atom("T", ("x", "y", "y"))))
        assert FAST.count(ternary, phi, ["x"]) == BRUTE.count(ternary, phi, ["x"])


class TestDistanceAtoms:
    def test_dist_atom_counting(self):
        p = path_graph(7)
        phi = And(DistAtom("x", "y", 2), Not(Eq("x", "y")))
        assert FAST.count(p, phi, ["x", "y"]) == BRUTE.count(p, phi, ["x", "y"])

    def test_dist_atom_as_guard(self):
        p = path_graph(30)
        # ball-guarded count: pairs within distance 3
        phi = DistAtom("x", "y", 3)
        fast = FAST.count(p, phi, ["x", "y"])
        assert fast == BRUTE.count(p, phi, ["x", "y"])

    def test_scattered_pair_count_via_complement(self):
        p = path_graph(10)
        phi = Not(DistAtom("x", "y", 2))
        assert FAST.count(p, phi, ["x", "y"]) == BRUTE.count(p, phi, ["x", "y"])


class TestBooleanShapes:
    @pytest.fixture
    def g(self):
        return graph_structure([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)])

    def test_iff_counting(self, g):
        phi = parse_formula("E(x, y) <-> E(y, x)")
        assert FAST.count(g, phi, ["x", "y"]) == BRUTE.count(g, phi, ["x", "y"])

    def test_implies_counting(self, g):
        phi = parse_formula("E(x, y) -> x = y")
        assert FAST.count(g, phi, ["x", "y"]) == BRUTE.count(g, phi, ["x", "y"])

    def test_top_bottom_counting(self, g):
        assert FAST.count(g, Top(), ["x", "y"]) == 16
        assert FAST.count(g, Bottom(), ["x", "y"]) == 0

    def test_double_negation(self, g):
        phi = Not(Not(parse_formula("E(x, y)")))
        assert FAST.count(g, phi, ["x", "y"]) == 6

    def test_forall_inside_count(self, g):
        term = parse_term("#(x). (forall y. (E(x, y) -> E(y, x)))")
        assert FAST.ground_term_value(g, term) == BRUTE.ground_term_value(g, term)


class TestDeepNesting:
    def test_depth_three_terms(self):
        g = graph_structure([1, 2, 3, 4, 5], [(1, 2), (2, 3), (3, 4), (4, 5)])
        # nodes whose count of (neighbours with even degree) is >= 1
        sentence = parse_formula(
            "@geq1(#(x). @geq1(#(y). (E(x, y) & @even(#(z). E(y, z)))))"
        )
        assert FAST.model_check(g, sentence) == BRUTE.model_check(g, sentence)

    def test_arithmetic_tower(self):
        g = path_graph(6)
        term = parse_term(
            "(#(x). x = x + 2) * (#(x, y). E(x, y) - 3) - -7"
        )
        assert FAST.ground_term_value(g, term) == BRUTE.ground_term_value(g, term)


class TestCustomPredicates:
    def test_user_predicate_collection(self):
        triple = NumericalPredicate("triple", 1, lambda v: v[0] % 3 == 0)
        collection = standard_collection().extended(triple)
        engine = Foc1Evaluator(predicates=collection)
        g = path_graph(7)
        sentence = parse_formula("@triple(#(x, y). E(x, y))")
        # 12 directed edges: divisible by 3
        assert engine.model_check(g, sentence)

    def test_oracle_counter_monotone(self):
        engine = Foc1Evaluator()
        g = path_graph(5)
        engine.predicates.reset_counter()
        engine.model_check(g, parse_formula("forall x. @geq1(#(y). E(x, y))"))
        first = engine.predicates.oracle_calls
        engine.model_check(g, parse_formula("forall x. @geq1(#(y). E(x, y))"))
        assert engine.predicates.oracle_calls == 2 * first


class TestSingletonUniverse:
    def test_all_operations_on_singleton(self):
        g = graph_structure([1], [])
        assert FAST.model_check(g, parse_formula("forall x. x = x"))
        assert FAST.count(g, parse_formula("x = y"), ["x", "y"]) == 1
        assert FAST.ground_term_value(g, parse_term("#(x, y). E(x, y)")) == 0
        with_loop = graph_structure([1], [(1, 1)], symmetric=False)
        assert FAST.ground_term_value(with_loop, parse_term("#(x, y). E(x, y)")) == 1
