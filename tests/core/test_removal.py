"""Property tests for the Removal Lemma (Lemmas 7.8 and 7.9)."""

import itertools

import pytest
from hypothesis import given, settings

from repro.core.removal import (
    distance_marker_name,
    removal_formula,
    removal_ground_term,
    removal_unary_term,
    remove_element,
    removed_relation_name,
    removed_signature,
)
from repro.errors import FormulaError, UniverseError
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate, satisfies
from repro.logic.syntax import CountTerm, DistAtom, free_variables
from repro.structures.builders import graph_structure, path_graph
from repro.structures.signature import Signature

from ..conftest import fo_formulas, small_graphs

RADIUS = 3


class TestSurgery:
    def test_names(self):
        assert removed_relation_name("E", frozenset()) == "E__rm"
        assert removed_relation_name("E", frozenset({2, 1})) == "E__rm_1_2"
        assert distance_marker_name(2) == "S__2"

    def test_removed_signature_counts(self):
        sig = removed_signature(Signature.of(E=2), 2)
        # E: subsets of {1,2} -> 4 symbols, plus S_1, S_2
        assert len(sig) == 6
        assert sig["E__rm"].arity == 2
        assert sig["E__rm_1_2"].arity == 0
        assert sig["S__1"].arity == 1

    def test_remove_splits_relations(self):
        g = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
        removed = remove_element(g, 2, 1)
        assert removed.relation("E__rm") == frozenset()
        assert removed.relation("E__rm_1") == frozenset({(1,), (3,)})
        assert removed.relation("E__rm_2") == frozenset({(1,), (3,)})
        assert removed.relation("S__1") == frozenset({(1,), (3,)})

    def test_distance_markers_use_original_distances(self):
        p = path_graph(5)
        removed = remove_element(p, 3, 2)
        # S_2 = elements at distance <= 2 from 3 in the ORIGINAL path
        assert removed.relation("S__2") == frozenset({(1,), (2,), (4,), (5,)})
        assert removed.relation("S__1") == frozenset({(2,), (4,)})

    def test_universe_shrinks(self):
        p = path_graph(4)
        removed = remove_element(p, 2, 1)
        assert 2 not in removed.universe
        assert removed.order() == 3

    def test_order_one_rejected(self):
        g = graph_structure([1], [])
        with pytest.raises(UniverseError):
            remove_element(g, 1, 1)

    def test_foreign_element_rejected(self, path5):
        with pytest.raises(UniverseError):
            remove_element(path5, 42, 1)


class TestLemma78:
    """A |= phi[a-bar] iff A*d |= phi~_V[a-bar \\ V]."""

    FORMULAS = [
        "E(x, y)",
        "x = y",
        "dist(x, y) <= 2",
        "dist(x, y) <= 1 & !E(x, y)",
        "exists z. (E(x, z) & E(z, y))",
        "forall z. (E(x, z) -> dist(z, y) <= 3)",
        "exists z. (E(x, z) & exists w. (E(z, w) & !(w = x)))",
    ]

    @pytest.mark.parametrize("source", FORMULAS)
    def test_on_small_graphs(self, source):
        phi = parse_formula(source)
        g = graph_structure(
            [1, 2, 3, 4, 5], [(1, 2), (2, 3), (3, 4), (4, 5), (2, 5)]
        )
        for d in g.universe_order:
            removed = remove_element(g, d, RADIUS)
            for a, b in itertools.product(g.universe_order, repeat=2):
                pinned = frozenset(
                    v for v, value in (("x", a), ("y", b)) if value == d
                )
                rewritten = removal_formula(phi, pinned, RADIUS)
                assert free_variables(rewritten) <= {"x", "y"} - pinned
                env = {
                    v: value
                    for v, value in (("x", a), ("y", b))
                    if value != d
                }
                assert satisfies(g, phi, {"x": a, "y": b}) == satisfies(
                    removed, rewritten, env
                ), (source, d, a, b)

    @given(small_graphs(min_vertices=2, max_vertices=5), fo_formulas(max_depth=2))
    @settings(max_examples=25, deadline=None)
    def test_random_formulas_sentences(self, structure, phi):
        from repro.logic.syntax import exists_block

        sentence = exists_block(sorted(free_variables(phi)), phi)
        d = structure.universe_order[0]
        removed = remove_element(structure, d, RADIUS)
        rewritten = removal_formula(sentence, frozenset(), RADIUS)
        assert satisfies(structure, sentence) == satisfies(removed, rewritten)

    def test_distance_bound_beyond_radius_rejected(self):
        phi = DistAtom("x", "y", 10)
        with pytest.raises(FormulaError):
            removal_formula(phi, frozenset(), 3)

    def test_counting_constructs_rejected(self):
        phi = parse_formula("@geq1(#(y). E(x, y))")
        with pytest.raises(FormulaError):
            removal_formula(phi, frozenset(), 3)


class TestLemma79:
    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=20, deadline=None)
    def test_ground_terms(self, structure):
        body = parse_formula("E(y1, y2) | dist(y1, y2) <= 2")
        term = CountTerm(("y1", "y2"), body)
        original = evaluate(term, structure)
        for d in list(structure.universe_order)[:2]:
            removed = remove_element(structure, d, RADIUS)
            parts = removal_ground_term(("y1", "y2"), body, RADIUS)
            assert len(parts) == 4  # subsets of {y1, y2}
            total = sum(evaluate(p.count_term(), removed) for p in parts)
            assert total == original

    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=20, deadline=None)
    def test_unary_terms(self, structure):
        body = parse_formula("E(x1, y2) & !(x1 = y2)")
        term = CountTerm(("y2",), body)
        d = structure.universe_order[-1]
        removed = remove_element(structure, d, RADIUS)
        ground_parts, unary_parts = removal_unary_term("x1", ("y2",), body, RADIUS)
        for a in structure.universe_order:
            original = evaluate(term, structure, {"x1": a})
            if a == d:
                got = sum(evaluate(p.count_term(), removed) for p in ground_parts)
            else:
                got = sum(
                    evaluate(p.count_term(), removed, {"x1": a})
                    for p in unary_parts
                )
            assert got == original, (d, a)

    def test_part_counts(self):
        body = parse_formula("E(x1, y2)")
        ground_parts, unary_parts = removal_unary_term("x1", ("y2",), body, 2)
        assert len(ground_parts) == 2  # y2 pinned or not, x1 always pinned
        assert len(unary_parts) == 2
