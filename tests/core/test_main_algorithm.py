"""Tests for the Section 8.2 main-algorithm loop (cover -> splitter move ->
removal -> Lemma 7.9 -> recombination)."""

import pytest
from hypothesis import given, settings

from repro.core.clterms import BasicClTerm
from repro.core.local_eval import evaluate_basic_unary
from repro.core.main_algorithm import (
    MainAlgorithmStats,
    evaluate_unary_main_algorithm,
)
from repro.errors import FormulaError
from repro.logic.builder import Rel
from repro.logic.syntax import And, Eq, Exists, Not
from repro.sparse.classes import random_tree
from repro.structures.builders import complete_graph, grid_graph, path_graph

from ..conftest import small_graphs

E = Rel("E", 2)


def degree_term():
    return BasicClTerm(
        ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=True
    )


def local_quantified_term():
    psi = And(E("y1", "y2"), Exists("z", And(E("y2", "z"), Not(Eq("z", "y1")))))
    return BasicClTerm(("y1", "y2"), psi, 1, 1, frozenset({(1, 2)}), unary=True)


def width3_term():
    psi = And(E("y1", "y2"), E("y2", "y3"))
    return BasicClTerm(
        ("y1", "y2", "y3"), psi, 0, 1, frozenset({(1, 2), (2, 3)}), unary=True
    )


class TestExactness:
    @pytest.mark.parametrize(
        "make_structure",
        [
            lambda: path_graph(17),
            lambda: grid_graph(5, 5),
            lambda: random_tree(35, seed=4),
        ],
    )
    @pytest.mark.parametrize(
        "make_term", [degree_term, local_quantified_term, width3_term]
    )
    def test_matches_local_evaluation(self, make_structure, make_term):
        structure = make_structure()
        term = make_term()
        got = evaluate_unary_main_algorithm(structure, term, depth=1)
        assert got == evaluate_basic_unary(structure, term)

    @given(small_graphs(min_vertices=2, max_vertices=7))
    @settings(max_examples=20, deadline=None)
    def test_random_structures(self, structure):
        term = degree_term()
        got = evaluate_unary_main_algorithm(structure, term, depth=1)
        assert got == evaluate_basic_unary(structure, term)

    def test_depth_zero_is_pure_engine(self):
        structure = grid_graph(4, 4)
        term = degree_term()
        stats = MainAlgorithmStats()
        got = evaluate_unary_main_algorithm(structure, term, depth=0, stats=stats)
        assert got == evaluate_basic_unary(structure, term)
        assert stats.removals == 0
        assert stats.covers_built == 0

    def test_dense_structure_falls_back(self):
        """On a clique the cover is one whole-graph cluster: the loop must
        detect that removal is useless and stay exact via the base case."""
        structure = complete_graph(14)
        term = degree_term()
        stats = MainAlgorithmStats()
        got = evaluate_unary_main_algorithm(
            structure, term, depth=1, small_threshold=4, stats=stats
        )
        assert got == evaluate_basic_unary(structure, term)
        assert stats.removals == 0  # the single cluster covers everything


class TestMachineryEngagement:
    def test_removals_happen_on_sparse_inputs(self):
        structure = path_graph(40)
        stats = MainAlgorithmStats()
        evaluate_unary_main_algorithm(
            structure, degree_term(), depth=1, small_threshold=4, stats=stats
        )
        assert stats.covers_built == 1
        assert stats.removals >= 1
        assert stats.clusters_processed >= 2

    def test_ground_recombination_at_removed_element(self):
        """The removed element d gets its value from the Lemma 7.9 ground
        parts; verify it explicitly on a path."""
        structure = path_graph(30)
        stats = MainAlgorithmStats()
        got = evaluate_unary_main_algorithm(
            structure, degree_term(), depth=1, small_threshold=4, stats=stats
        )
        assert stats.removals >= 1
        expected = evaluate_basic_unary(structure, degree_term())
        assert got == expected

    def test_rejects_ground_terms(self):
        ground = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=False
        )
        with pytest.raises(FormulaError):
            evaluate_unary_main_algorithm(path_graph(5), ground)
