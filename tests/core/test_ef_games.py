"""Tests for the EF+_q game (Theorem 7.2's characterisation)."""

import pytest
from hypothesis import given, settings

from repro.core.ef_games import (
    distinguish,
    duplicator_wins,
    is_partial_r_isomorphism,
)
from repro.errors import FormulaError
from repro.structures.builders import cycle_graph, graph_structure, path_graph

from ..conftest import small_graphs


class TestPartialRIsomorphism:
    def test_empty_tuples(self, path5):
        assert is_partial_r_isomorphism(path5, (), path5, (), 3)

    def test_identity_is_partial_isomorphism(self, path5):
        assert is_partial_r_isomorphism(path5, (1, 3), path5, (1, 3), 10)

    def test_symmetry_of_the_path(self, path5):
        # the mirror map 1<->5, 2<->4 preserves everything
        assert is_partial_r_isomorphism(path5, (1, 2), path5, (5, 4), 10)

    def test_distance_violation_detected(self, path5):
        # (1,2) at distance 1 vs (1,3) at distance 2
        assert not is_partial_r_isomorphism(path5, (1, 2), path5, (1, 3), 10)

    def test_distance_beyond_threshold_ignored(self):
        p = path_graph(9)
        # distances 5 vs 7 both exceed threshold 3: allowed
        assert is_partial_r_isomorphism(p, (1, 6), p, (1, 8), 3)
        assert not is_partial_r_isomorphism(p, (1, 6), p, (1, 8), 6)

    def test_relation_violation_detected(self, path5, triangle):
        assert not is_partial_r_isomorphism(path5, (1, 3), triangle, (1, 3), 1)

    def test_repeated_entries_must_match(self, path5):
        assert is_partial_r_isomorphism(path5, (2, 2), path5, (4, 4), 5)
        assert not is_partial_r_isomorphism(path5, (2, 2), path5, (4, 3), 5)


class TestGame:
    def test_zero_rounds_is_the_isomorphism_check(self, path5):
        assert duplicator_wins(path5, (1,), path5, (5,), q=1, rounds=0)
        assert not duplicator_wins(path5, (1, 2), path5, (1, 3), q=1, rounds=0)

    def test_duplicator_wins_on_identical_structures(self, triangle):
        assert duplicator_wins(triangle, (1,), triangle, (2,), q=2, rounds=1)

    def test_spoiler_separates_path_endpoints_from_middle(self):
        p = path_graph(5)
        # endpoint vs centre: degree differs, one round suffices
        assert not duplicator_wins(p, (1,), p, (3,), q=2, rounds=1)

    def test_long_cycles_locally_alike(self):
        # two vertices of the same cycle are symmetric: Duplicator wins
        c = cycle_graph(8)
        assert duplicator_wins(c, (1,), c, (4,), q=1, rounds=1)

    def test_negative_rounds_rejected(self, path5):
        with pytest.raises(FormulaError):
            duplicator_wins(path5, (), path5, (), q=1, rounds=-1)


class TestTheorem72:
    """If Duplicator wins l rounds, no FO+ formula of q-rank <= l separates
    the positions (the transfer direction of Theorem 7.2)."""

    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=15, deadline=None)
    def test_game_win_implies_indistinguishable(self, structure):
        nodes = list(structure.universe_order)
        a, b = nodes[0], nodes[-1]
        q, rounds = 1, 1
        if duplicator_wins(structure, (a,), structure, (b,), q, rounds):
            assert (
                distinguish(structure, (a,), structure, (b,), q, rounds) is None
            )

    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=15, deadline=None)
    def test_distinguishing_formula_implies_spoiler_win(self, structure):
        nodes = list(structure.universe_order)
        a, b = nodes[0], nodes[-1]
        q, rounds = 1, 1
        formula = distinguish(structure, (a,), structure, (b,), q, rounds)
        if formula is not None:
            assert not duplicator_wins(structure, (a,), structure, (b,), q, rounds)

    def test_cross_structure_example(self):
        # K3 vs P3 pointed at the degree-2 vertex: locally identical with
        # one extra element (two neighbours each, both adjacent), so
        # Duplicator survives one round — but two rounds expose the missing
        # edge/distance between the neighbours.
        triangle = graph_structure([1, 2, 3], [(1, 2), (2, 3), (3, 1)])
        path = path_graph(3)
        assert duplicator_wins(triangle, (2,), path, (2,), q=2, rounds=1)
        assert not duplicator_wins(triangle, (2,), path, (2,), q=2, rounds=2)
