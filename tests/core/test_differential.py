"""Seeded randomized differential tests: every engine, one answer.

For ~100 seeded random (structure, formula) pairs the three public engines
— :class:`RobustEvaluator`, :class:`Foc1Evaluator` and the literal
Definition 3.1 :class:`BruteForceEvaluator` — must agree on model checking
and counting.  A second battery re-runs the cascade with a fault injected
at every registered site and checks the answer against fault-free ground
truth: robustness must never trade exactness for availability.

Plain ``random.Random(seed)`` (not hypothesis) so each case is a fixed,
individually re-runnable pytest id.
"""

import random

import pytest

from repro.core.baseline import BruteForceEvaluator
from repro.core.evaluator import Foc1Evaluator
from repro.core.local_eval import evaluate_basic_unary
from repro.logic.syntax import (
    And,
    Atom,
    CountTerm,
    Eq,
    Exists,
    Forall,
    IntTerm,
    Not,
    Or,
    PredicateAtom,
    exists_block,
    free_variables,
)
from repro.robust import FAULT_SITES, FaultInjector, RobustEvaluator, inject_faults
from repro.structures.builders import graph_structure, grid_graph

from repro import BasicClTerm

VARS = ("x", "y", "z")
PREDICATES = {"geq1": 1, "eq": 2, "leq": 2, "even": 1, "prime": 1}


def _random_graph(rng: random.Random):
    n = rng.randint(1, 6)
    vertices = list(range(1, n + 1))
    pairs = [(u, v) for u in vertices for v in vertices if u < v]
    edges = [pair for pair in pairs if rng.random() < 0.4]
    return graph_structure(vertices, edges)


def _random_atom(rng: random.Random):
    a, b = rng.choice(VARS), rng.choice(VARS)
    return Eq(a, b) if rng.random() < 0.3 else Atom("E", (a, b))


def _random_count_atom(rng: random.Random):
    """A rule-(4') predicate atom over a one-free-variable counting term."""
    free = rng.choice(VARS)
    bound = rng.choice([v for v in VARS if v != free])
    body = And(Atom("E", (free, bound)), Not(Eq(free, bound)))
    if rng.random() < 0.5:
        body = Or(body, Atom("E", (bound, bound)))
    term = CountTerm((bound,), body)
    name = rng.choice(sorted(PREDICATES))
    if PREDICATES[name] == 1:
        return PredicateAtom(name, (term,))
    return PredicateAtom(name, (term, IntTerm(rng.randint(0, 3))))


def _random_formula(rng: random.Random, depth: int):
    if depth == 0:
        return _random_atom(rng)
    choice = rng.randint(0, 6)
    if choice == 0:
        return _random_atom(rng)
    if choice == 1:
        return Not(_random_formula(rng, depth - 1))
    if choice == 2:
        return And(_random_formula(rng, depth - 1), _random_formula(rng, depth - 1))
    if choice == 3:
        return Or(_random_formula(rng, depth - 1), _random_formula(rng, depth - 1))
    if choice == 4:
        return Exists(rng.choice(VARS), _random_formula(rng, depth - 1))
    if choice == 5:
        return Forall(rng.choice(VARS), _random_formula(rng, depth - 1))
    return _random_count_atom(rng)


@pytest.mark.parametrize("seed", range(100))
def test_engines_agree(seed):
    rng = random.Random(seed)
    structure = _random_graph(rng)
    formula = _random_formula(rng, depth=2)
    sentence = exists_block(sorted(free_variables(formula)), formula)

    robust = RobustEvaluator()
    fast = Foc1Evaluator(check_fragment=False)
    brute = BruteForceEvaluator()

    expected = brute.model_check(structure, sentence)
    assert fast.model_check(structure, sentence) == expected
    assert robust.model_check(structure, sentence) == expected
    assert robust.last_report.succeeded()

    count_vars = sorted(free_variables(formula)) or ["x"]
    expected_count = brute.count(structure, formula, count_vars)
    assert fast.count(structure, formula, count_vars) == expected_count
    assert robust.count(structure, formula, count_vars) == expected_count


# ---------------------------------------------------------------------------
# Fault-injected differentials: every registered site, exact answers.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def grid():
    return grid_graph(5, 5)


@pytest.fixture(scope="module")
def degree_term():
    return BasicClTerm(
        ("y1", "y2"), Atom("E", ("y1", "y2")), 0, 1, frozenset({(1, 2)}), unary=True
    )


@pytest.mark.parametrize("site", FAULT_SITES)
def test_cascade_exact_under_fault_at_every_site(site, grid, degree_term):
    truth = evaluate_basic_unary(grid, degree_term)
    engine = RobustEvaluator()
    with inject_faults(FaultInjector({site: 1})) as injector:
        values = engine.evaluate_unary_cl_term(grid, degree_term)
    assert values == truth
    report = engine.last_report
    assert report.succeeded()
    # If the armed site was actually exercised, some stage must have
    # absorbed the failure — and the cascade still answered exactly.
    if injector.fired[site]:
        assert report.failed_stages()


@pytest.mark.parametrize("site", FAULT_SITES)
def test_model_check_exact_under_fault_at_every_site(site):
    from repro.logic.parser import parse_formula

    structure = grid_graph(4, 4)
    sentence = parse_formula("forall x. @geq1(#(y). E(x, y))")
    truth = BruteForceEvaluator().model_check(structure, sentence)
    engine = RobustEvaluator()
    with inject_faults(FaultInjector({site: 1})):
        assert engine.model_check(structure, sentence) == truth
    assert engine.last_report.succeeded()


def test_cascade_exact_under_seeded_rate_faults(grid, degree_term):
    """A noisy run: random faults everywhere (seeded, bounded) must still
    produce the exact answer or a typed error — never a wrong answer."""
    truth = evaluate_basic_unary(grid, degree_term)
    for seed in range(5):
        engine = RobustEvaluator()
        with inject_faults(FaultInjector(seed=seed, rate=0.001, limit=2)):
            values = engine.evaluate_unary_cl_term(grid, degree_term)
        assert values == truth
