"""30-seed differential suite: columnar kernels vs the set-based reference.

The columnar refactor is representation-only, so for seeded random
(structure, term) pairs every rewritten path must be *byte-identical* to
the preserved element-space oracle (:mod:`repro.core.reference`):

* ``pattern_tuples`` yields the same tuple set as the reference walk;
* ``evaluate_basic_unary`` returns the same dict (keys, order, values);
* ``sparse_cover`` builds the same clusters/assignment/centres as the
  pre-columnar greedy construction replayed over the reference BFS;
* the cover paths agree across the serial/thread/process backends at
  workers 1, 2 and 4.
"""

import random

import pytest

from repro.core.clterms import BasicClTerm, CoverTerm
from repro.core.cover_eval import evaluate_per_cluster
from repro.core.local_eval import evaluate_basic_unary, pattern_tuples
from repro.core.reference import (
    ReferenceBallCache,
    reference_ball,
    reference_distances_from,
    reference_evaluate_basic_unary,
    reference_pattern_tuples,
)
from repro.logic.syntax import And, Atom, Eq, Exists, Not
from repro.sparse.covers import sparse_cover
from repro.structures.builders import graph_structure

SEEDS = range(30)

#: Connected pattern graphs by width.
PATTERNS = {
    1: [()],
    2: [((1, 2),)],
    3: [((1, 2), (2, 3)), ((1, 2), (1, 3), (2, 3))],
}


def _random_structure(rng: random.Random):
    n = rng.randint(6, 14)
    if rng.random() < 0.25:
        # Mixed-type universe: interning must not force element comparisons.
        vertices = [f"v{i}" if i % 3 else (i, i) for i in range(n)]
    else:
        vertices = list(range(1, n + 1))
    pairs = [
        (vertices[i], vertices[j])
        for i in range(n)
        for j in range(i + 1, n)
    ]
    edges = [pair for pair in pairs if rng.random() < rng.uniform(0.1, 0.35)]
    return graph_structure(vertices, edges)


def _random_term(rng: random.Random) -> BasicClTerm:
    k = rng.choice([1, 2, 2, 3])
    edges = rng.choice(PATTERNS[k])
    variables = tuple(f"y{i}" for i in range(1, k + 1))
    v1 = variables[0]
    v2 = variables[-1]
    psi = And(Atom("E", (v1, v2)), Not(Eq(v1, v2)))
    if k == 1:
        psi = Atom("E", (v1, v1))
    if rng.random() < 0.4:
        psi = Not(psi)
    if rng.random() < 0.3:
        psi = Exists("z", And(Atom("E", (v1, "z")), Not(Eq("z", v1))))
    return BasicClTerm(
        variables,
        psi,
        psi_radius=1,
        link_distance=rng.choice([1, 2]),
        edges=edges,
        unary=True,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_pattern_tuples_match_reference(seed):
    rng = random.Random(seed)
    structure = _random_structure(rng)
    term = _random_term(rng)
    reference_balls = ReferenceBallCache(structure, term.link_distance)
    for element in structure.universe_order:
        got = set(
            pattern_tuples(
                structure, element, term.width, term.edges, term.link_distance
            )
        )
        want = set(
            reference_pattern_tuples(
                structure,
                element,
                term.width,
                term.edges,
                term.link_distance,
                reference_balls,
            )
        )
        assert got == want


@pytest.mark.parametrize("seed", SEEDS)
def test_evaluate_basic_unary_byte_identical(seed):
    rng = random.Random(seed)
    structure = _random_structure(rng)
    term = _random_term(rng)
    got = evaluate_basic_unary(structure, term)
    want = reference_evaluate_basic_unary(structure, term)
    assert got == want
    assert list(got) == list(want)  # same insertion order, not just same sets


def _reference_sparse_cover(structure, radius):
    """The pre-columnar greedy construction, replayed over reference BFS."""
    centres = []
    closest = {}
    for element in structure.universe_order:
        if element in closest and closest[element][0] <= radius:
            continue
        index = len(centres)
        centres.append(element)
        for covered, dist in reference_distances_from(
            structure, [element], radius
        ).items():
            best = closest.get(covered)
            if best is None or dist < best[0]:
                closest[covered] = (dist, index)
    clusters = tuple(
        reference_ball(structure, [centre], 2 * radius) for centre in centres
    )
    assignment = {
        element: closest[element][1] for element in structure.universe_order
    }
    return clusters, assignment, tuple(centres)


@pytest.mark.parametrize("seed", SEEDS)
def test_sparse_cover_byte_identical(seed):
    rng = random.Random(seed)
    structure = _random_structure(rng)
    radius = rng.choice([1, 2])
    cover = sparse_cover(structure, radius)
    clusters, assignment, centres = _reference_sparse_cover(structure, radius)
    assert cover.clusters == clusters
    assert cover.assignment == assignment
    assert list(cover.assignment) == list(assignment)
    assert cover.centres == centres


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "backend,workers",
    [
        ("serial", 1),
        ("thread", 2),
        ("thread", 4),
        ("process", 2),
        ("process", 4),
    ],
)
def test_per_cluster_backends_byte_identical(seed, backend, workers):
    rng = random.Random(seed)
    structure = _random_structure(rng)
    term = _random_term(rng)
    cover = sparse_cover(structure, term.width * term.link_distance)
    as_cover = CoverTerm(
        term.variables,
        term.edges,
        term.link_distance,
        ((frozenset(range(1, term.width + 1)), term.psi),),
        unary=True,
    )
    want = evaluate_per_cluster(structure, cover, as_cover)
    got = evaluate_per_cluster(
        structure, cover, as_cover, workers=workers, backend=backend
    )
    assert got == want
    assert list(got) == list(want)
