"""Tests for the q-rank measure of Section 7."""

import pytest

from repro.core.rank import (
    admissible_distance_bound,
    fq,
    has_q_rank,
    minimal_level,
    q_rank_report,
)
from repro.errors import FormulaError
from repro.logic.syntax import And, Atom, DistAtom, Exists


class TestFq:
    def test_formula(self):
        assert fq(1, 0) == 4
        assert fq(2, 1) == 8**3
        assert fq(3, 2) == 12**5

    def test_invalid_parameters(self):
        with pytest.raises(FormulaError):
            fq(0, 1)
        with pytest.raises(FormulaError):
            fq(1, -1)


class TestQRank:
    def test_quantifier_rank_bound(self):
        phi = Exists("x", Exists("y", Atom("E", ("x", "y"))))
        assert has_q_rank(phi, q=2, level=2)
        assert not has_q_rank(phi, q=2, level=1)

    def test_distance_bound_depends_on_depth(self):
        q, level = 2, 1
        # At depth 0 the bound is (4q)^(q+l) = 8^3 = 512.
        shallow = DistAtom("x", "y", 512)
        assert has_q_rank(shallow, q, level)
        assert not has_q_rank(DistAtom("x", "y", 513), q, level)
        # Inside one quantifier only (4q)^(q+l-1) = 64 is allowed.
        inside = Exists("z", And(Atom("E", ("x", "z")), DistAtom("z", "y", 64)))
        assert has_q_rank(inside, q, level)
        too_big = Exists("z", DistAtom("z", "y", 65))
        assert not has_q_rank(too_big, q, level)

    def test_report_contents(self):
        phi = Exists("z", DistAtom("z", "y", 7))
        report = q_rank_report(phi, q=2, level=3)
        assert report.quantifier_rank == 1
        assert report.distance_atoms == ((1, 7),)
        assert report.within

    def test_minimal_level(self):
        phi = Exists("x", Exists("y", DistAtom("x", "y", 5)))
        assert minimal_level(phi, q=2) == 2
        deep = DistAtom("x", "y", 10**9)
        assert minimal_level(deep, q=1, cap=5) is None

    def test_counting_constructs_rejected(self):
        from repro.logic.parser import parse_formula

        with pytest.raises(FormulaError):
            has_q_rank(parse_formula("@geq1(#(y). E(x, y))"), 2, 2)

    def test_admissible_bound(self):
        assert admissible_distance_bound(2, 3, 1) == fq(2, 2)
        with pytest.raises(FormulaError):
            admissible_distance_bound(2, 1, 2)
