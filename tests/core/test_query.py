"""Tests for FOC1(P)-queries and the Section 5 free-variable elimination."""

import pytest
from hypothesis import given, settings

from repro.core.query import (
    Foc1Query,
    eliminate_free_variables,
    pin_name,
    pinned_ground_term,
    pinned_sentence,
    pinned_structure,
)
from repro.errors import FormulaError, FragmentError
from repro.logic.builder import Rel, count
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate, satisfies
from repro.logic.syntax import And, Eq, Exists, Top, free_variables

from ..conftest import foc1_formulas, small_graphs

E = Rel("E", 2)


class TestQueryValidation:
    def test_condition_free_vars_must_match_head(self):
        with pytest.raises(FormulaError):
            Foc1Query(head_variables=("x",), condition=Top())
        with pytest.raises(FormulaError):
            Foc1Query(head_variables=(), condition=E("x", "y"))

    def test_head_terms_within_head_variables(self):
        with pytest.raises(FormulaError):
            Foc1Query(
                head_variables=("x",),
                head_terms=(count(["z"], E("y", "z")),),
                condition=Exists("y", E("x", "y")),
            )

    def test_duplicate_head_variables_rejected(self):
        with pytest.raises(FormulaError):
            Foc1Query(head_variables=("x", "x"), condition=And(E("x", "x"), Top()))

    def test_missing_condition_rejected(self):
        with pytest.raises(FormulaError):
            Foc1Query(head_variables=())

    def test_validate_foc1(self):
        bad = parse_formula("@eq(#(z). E(x, z), #(z). E(y, z)) & E(x, y)")
        query = Foc1Query(head_variables=("x", "y"), condition=bad)
        with pytest.raises(FragmentError):
            query.validate_foc1()


class TestNaiveEvaluation:
    def test_degree_listing(self, triangle):
        query = Foc1Query(
            head_variables=("x",),
            head_terms=(count(["y"], E("x", "y")),),
            condition=Eq("x", "x"),
        )
        rows = sorted(query.evaluate_naive(triangle))
        assert rows == [(1, 2), (2, 2), (3, 2)]

    def test_aggregating_query_without_head_vars(self, triangle):
        query = Foc1Query(
            head_variables=(),
            head_terms=(count(["x", "y"], E("x", "y")),),
            condition=Top(),
        )
        assert query.evaluate_naive(triangle) == [(6,)]


class TestPinning:
    def test_pinned_structure_singletons(self, path5):
        expanded = pinned_structure(path5, ["x", "y"], [2, 4])
        assert expanded.relation(pin_name("x")) == frozenset({(2,)})
        assert expanded.relation(pin_name("y")) == frozenset({(4,)})

    def test_pinned_sentence_is_sentence(self):
        phi = E("x", "y")
        sentence = pinned_sentence(phi, ["x", "y"])
        assert not free_variables(sentence)

    def test_unpinned_free_variable_rejected(self):
        with pytest.raises(FormulaError):
            pinned_sentence(E("x", "y"), ["x"])

    def test_pinned_ground_term_is_ground(self):
        term = count(["z"], E("x", "z")) + 3
        pinned = pinned_ground_term(term, ["x"])
        assert not free_variables(pinned)

    def test_rebinding_head_variable_is_alpha_renamed(self, path5):
        """A counting term may bind a head-variable name; pinning must
        alpha-rename it rather than capture (Section 5 still applies)."""
        term = count(["x"], E("x", "x"))  # ground: counts self-loops
        pinned = pinned_ground_term(term, ["x"])
        assert not free_variables(pinned)
        expanded = pinned_structure(path5, ["x"], [3])
        assert evaluate(pinned, expanded) == evaluate(term, path5, {"x": 3})

    @given(small_graphs(min_vertices=2, max_vertices=5), foc1_formulas(max_depth=2))
    @settings(max_examples=30, deadline=None)
    def test_section5_equivalence_formulas(self, structure, phi):
        """A |= phi[a-bar]  iff  A-tilde |= phi-tilde  (Section 5)."""
        head = sorted(free_variables(phi))
        elements = list(structure.universe_order)[: len(head)]
        if len(elements) < len(head):
            elements = elements * len(head)
            elements = elements[: len(head)]
        expanded = pinned_structure(structure, head, elements)
        sentence = pinned_sentence(phi, head)
        lhs = satisfies(structure, phi, dict(zip(head, elements)))
        rhs = satisfies(expanded, sentence)
        assert lhs == rhs

    @given(small_graphs(min_vertices=2, max_vertices=5))
    @settings(max_examples=25, deadline=None)
    def test_section5_equivalence_terms(self, structure):
        """t-tilde^{A-tilde} = t^A[a-bar]."""
        term = count(["z"], E("x", "z")) * 2 + count(["z", "w"], And(E("x", "z"), E("z", "w")))
        for a in list(structure.universe_order)[:3]:
            expanded = pinned_structure(structure, ["x"], [a])
            pinned = pinned_ground_term(term, ["x"])
            assert evaluate(pinned, expanded) == evaluate(term, structure, {"x": a})

    def test_eliminate_free_variables_package(self, path5):
        query = Foc1Query(
            head_variables=("x",),
            head_terms=(count(["y"], E("x", "y")),),
            condition=Eq("x", "x"),
        )
        expanded, sentence, terms = eliminate_free_variables(query, path5, [3])
        assert satisfies(expanded, sentence)
        assert evaluate(terms[0], expanded) == 2  # degree of vertex 3
