"""Differential tests of the main engine against the literal semantics.

These are the load-bearing correctness tests of the reproduction: the
optimized :class:`Foc1Evaluator` must agree with Definition 3.1 on random
FOC1(P) expressions over random structures — model checking, counting,
unary term evaluation, and full query evaluation.
"""

import pytest
from hypothesis import given, settings

from repro.core.baseline import BruteForceEvaluator
from repro.core.evaluator import Foc1Evaluator
from repro.core.query import Foc1Query
from repro.errors import EvaluationError, FragmentError
from repro.logic.builder import Rel, count
from repro.logic.parser import parse_formula, parse_term
from repro.logic.syntax import And, Exists, exists_block, free_variables

from ..conftest import foc1_formulas, small_graphs

E = Rel("E", 2)

FAST = Foc1Evaluator()
BRUTE = BruteForceEvaluator()


class TestModelChecking:
    SENTENCES = [
        "exists x. exists y. E(x, y)",
        "forall x. @leq(#(y). E(x, y), 3)",
        "@prime(#(x). x = x + #(x, y). E(x, y))",
        "exists x. @eq(#(y, z). (E(x, y) & E(y, z) & E(z, x)), 0)",
        "exists x. @geq1(#(y). (E(x, y) & @geq1(#(z). E(y, z))))",
        "exists x. (@even(#(y). E(x, y)) & exists y. E(x, y))",
        "forall x. (@geq1(#(y). E(x, y)) -> exists y. E(y, x))",
    ]

    @pytest.mark.parametrize("source", SENTENCES)
    @given(structure=small_graphs(min_vertices=1, max_vertices=6))
    @settings(max_examples=10, deadline=None)
    def test_agrees_with_brute_force(self, source, structure):
        sentence = parse_formula(source)
        assert FAST.model_check(structure, sentence) == BRUTE.model_check(
            structure, sentence
        )

    @given(
        structure=small_graphs(min_vertices=1, max_vertices=5),
        phi=foc1_formulas(max_depth=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_sentences(self, structure, phi):
        sentence = exists_block(sorted(free_variables(phi)), phi)
        assert FAST.model_check(structure, sentence) == BRUTE.model_check(
            structure, sentence
        )

    def test_non_sentence_rejected(self, triangle):
        with pytest.raises(EvaluationError):
            FAST.model_check(triangle, parse_formula("E(x, y)"))

    def test_fragment_enforced(self, triangle):
        bad = parse_formula("exists x. exists y. @eq(#(z). E(x, z), #(z). E(y, z))")
        with pytest.raises(FragmentError):
            FAST.model_check(triangle, bad)
        # oracle parity: the brute-force oracle rejects it identically
        with pytest.raises(FragmentError):
            BRUTE.model_check(triangle, bad)
        # but evaluable with the check disabled (full FOC(P), inline path)
        relaxed = Foc1Evaluator(check_fragment=False)
        relaxed_oracle = BruteForceEvaluator(check_fragment=False)
        assert relaxed.model_check(triangle, bad) == relaxed_oracle.model_check(
            triangle, bad
        )


class TestCounting:
    COUNTS = [
        ("E(x, y)", ["x", "y"]),
        ("!E(x, y)", ["x", "y"]),
        ("E(x, y) | E(y, x)", ["x", "y"]),
        ("E(x, y) & E(y, z)", ["x", "y", "z"]),
        ("E(x, y) & !(x = z)", ["x", "y", "z"]),
        ("exists w. (E(x, w) & E(w, y))", ["x", "y"]),
        ("@geq1(#(w). E(x, w)) & E(x, y)", ["x", "y"]),
        ("x = x", ["x", "y"]),
    ]

    @pytest.mark.parametrize("source,variables", COUNTS)
    @given(structure=small_graphs(min_vertices=1, max_vertices=6))
    @settings(max_examples=10, deadline=None)
    def test_counts_agree(self, source, variables, structure):
        phi = parse_formula(source)
        assert FAST.count(structure, phi, variables) == BRUTE.count(
            structure, phi, variables
        )

    @given(
        structure=small_graphs(min_vertices=1, max_vertices=4),
        phi=foc1_formulas(max_depth=2),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_counts(self, structure, phi):
        variables = sorted(free_variables(phi)) or ["x"]
        assert FAST.count(structure, phi, variables) == BRUTE.count(
            structure, phi, variables
        )

    def test_count_input_validation(self, triangle):
        with pytest.raises(EvaluationError):
            FAST.count(triangle, parse_formula("E(x, y)"), ["x"])
        with pytest.raises(EvaluationError):
            FAST.count(triangle, parse_formula("E(x, y)"), ["x", "x"])

    def test_ablation_modes_agree(self, sparse20):
        phi = parse_formula("E(x, y) & E(y, z)")
        reference = BRUTE.count(sparse20, phi, ["x", "y", "z"])
        for factoring in (True, False):
            for guards in (True, False):
                engine = Foc1Evaluator(use_factoring=factoring, use_guards=guards)
                assert engine.count(sparse20, phi, ["x", "y", "z"]) == reference


class TestTerms:
    TERMS = [
        "#(x, y). E(x, y)",
        "#(x). @geq1(#(y). E(x, y))",
        "#(x, y). E(x, y) * 2 - #(x). x = x",
        "#(x). @eq(#(y). E(x, y), 2)",
        "3 + -2 * #(x). x = x",
    ]

    @pytest.mark.parametrize("source", TERMS)
    @given(structure=small_graphs(min_vertices=1, max_vertices=6))
    @settings(max_examples=10, deadline=None)
    def test_ground_terms_agree(self, source, structure):
        term = parse_term(source)
        assert FAST.ground_term_value(structure, term) == BRUTE.ground_term_value(
            structure, term
        )

    @given(structure=small_graphs(min_vertices=1, max_vertices=6))
    @settings(max_examples=20, deadline=None)
    def test_unary_values_agree(self, structure):
        term = parse_term("#(y, z). (E(x, y) & E(y, z)) + #(y). E(y, x)")
        assert FAST.unary_term_values(structure, term, "x") == BRUTE.unary_term_values(
            structure, term, "x"
        )

    def test_unary_restricted_elements(self, path5):
        term = parse_term("#(y). E(x, y)")
        values = FAST.unary_term_values(path5, term, "x", elements=[1, 3])
        assert values == {1: 1, 3: 2}

    def test_free_variable_validation(self, triangle):
        term = parse_term("#(y). E(x, y)")
        with pytest.raises(EvaluationError):
            FAST.ground_term_value(triangle, term)
        with pytest.raises(EvaluationError):
            FAST.unary_term_values(triangle, term, "z")


class TestSolutionsAndQueries:
    @given(structure=small_graphs(min_vertices=1, max_vertices=6))
    @settings(max_examples=20, deadline=None)
    def test_solutions_agree(self, structure):
        phi = parse_formula("E(x, y) & @geq1(#(z). E(y, z))")
        fast = sorted(FAST.solutions(structure, phi, ["x", "y"]))
        brute = sorted(BRUTE.solutions(structure, phi, ["x", "y"]))
        assert fast == brute

    @given(structure=small_graphs(min_vertices=2, max_vertices=6))
    @settings(max_examples=20, deadline=None)
    def test_query_evaluation_agrees(self, structure):
        query = Foc1Query(
            head_variables=("x",),
            head_terms=(count(["y"], E("x", "y")), count(["y", "z"], And(E("x", "y"), E("y", "z")))),
            condition=Exists("y", E("x", "y")),
        )
        assert sorted(FAST.evaluate_query(structure, query)) == sorted(
            BRUTE.evaluate_query(structure, query)
        )

    def test_example_5_4_query(self):
        from repro.logic.examples import example_5_4_query
        from repro.sparse.classes import coloured_digraph

        g = coloured_digraph(12, 2.0, seed=9)
        query = example_5_4_query()
        assert sorted(FAST.evaluate_query(g, query)) == sorted(
            BRUTE.evaluate_query(g, query)
        )


class TestStratification:
    def test_oracle_calls_are_counted(self, triangle):
        engine = Foc1Evaluator()
        engine.predicates.reset_counter()
        engine.model_check(
            triangle, parse_formula("forall x. @geq1(#(y). E(x, y))")
        )
        # one oracle call per element for the materialised unary relation
        assert engine.predicates.oracle_calls == 3

    def test_nested_depth_two(self, sparse20):
        sentence = parse_formula(
            "@geq1(#(x). @eq(#(y). E(x, y), #(y). E(y, x)))"
        )
        assert FAST.model_check(sparse20, sentence) == BRUTE.model_check(
            sparse20, sentence
        )

    def test_structure_not_mutated(self, triangle):
        signature_before = triangle.signature
        FAST.model_check(triangle, parse_formula("exists x. @geq1(#(y). E(x, y))"))
        assert triangle.signature == signature_before
