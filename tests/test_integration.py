"""Cross-module integration tests: full pipelines spanning several
subsystems, mirroring how a downstream user composes the library."""

import random


from repro import (
    BruteForceEvaluator,
    Foc1Evaluator,
    Foc1Query,
    Rel,
    graph_structure,
    parse_formula,
)
from repro.core.clterms import BasicClTerm
from repro.core.decomposition import decompose_factored_count
from repro.core.local_eval import evaluate_polynomial_unary
from repro.core.main_algorithm import evaluate_unary_main_algorithm
from repro.core.query import eliminate_free_variables
from repro.db import CUSTOMER, EXAMPLE_5_3_SCHEMA, Database, group_by_count
from repro.hardness import reduce_to_string, reduce_to_tree
from repro.logic.semantics import satisfies
from repro.sparse import rounds_needed, sparse_cover
from repro.sparse.classes import coloured_digraph, random_tree

E = Rel("E", 2)


class TestQueryPipelineAgainstSection5:
    """Foc1Query evaluation == pinned-sentence evaluation == brute force."""

    def test_three_routes_agree(self):
        graph = coloured_digraph(14, 2.0, seed=21)
        from repro.logic.examples import example_5_4_query

        query = example_5_4_query()
        fast = Foc1Evaluator()
        brute = BruteForceEvaluator()

        rows_fast = sorted(fast.evaluate_query(graph, query))
        rows_brute = sorted(brute.evaluate_query(graph, query))
        assert rows_fast == rows_brute

        # third route: Section 5 pinning, tuple by tuple
        import itertools

        pinned_rows = []
        for tup in itertools.product(graph.universe_order, repeat=2):
            expanded, sentence, terms = eliminate_free_variables(
                query, graph, list(tup)
            )
            if satisfies(expanded, sentence):
                values = tuple(
                    brute.ground_term_value(expanded, term) for term in terms
                )
                pinned_rows.append(tup + values)
        assert sorted(pinned_rows) == rows_fast


class TestDecompositionMatchesEngine:
    def test_three_evaluation_paths_for_unary_term(self):
        structure = random_tree(30, seed=13)
        variables = ("y1", "y2", "y3")
        body = (E("y1", "y2") & E("y2", "y3"))

        # path 1: the engine
        from repro.logic.syntax import CountTerm

        engine_values = Foc1Evaluator().unary_term_values(
            structure, CountTerm(("y2", "y3"), body), "y1"
        )

        # path 2: Lemma 6.4 decomposition + ball exploration
        poly = decompose_factored_count(variables, body, 0, 1, unary=True)
        poly_values = evaluate_polynomial_unary(structure, poly)

        # path 3: the Section 8.2 main algorithm on the connected pattern
        term = BasicClTerm(
            variables, body, 0, 1, frozenset({(1, 2), (2, 3)}), unary=True
        )
        # main-algorithm counts tuples with *exact* pattern chains only;
        # restrict comparison to its own ball-exploration reference.
        from repro.core.local_eval import evaluate_basic_unary

        main_values = evaluate_unary_main_algorithm(structure, term, depth=1)
        assert main_values == evaluate_basic_unary(structure, term)

        assert engine_values == poly_values


class TestHardnessRoundTrip:
    def test_same_question_three_substrates(self):
        rng = random.Random(31)
        n = 5
        edges = [
            (u, v)
            for u in range(1, n + 1)
            for v in range(u + 1, n + 1)
            if rng.random() < 0.4
        ]
        graph = graph_structure(range(1, n + 1), edges)
        phi = parse_formula("forall x. exists y. E(x, y)")
        truth = satisfies(graph, phi)

        engine = Foc1Evaluator(check_fragment=False)
        tree, phi_tree = reduce_to_tree(graph, phi)
        string, phi_string = reduce_to_string(graph, phi)
        assert engine.model_check(tree, phi_tree) == truth
        assert engine.model_check(string, phi_string) == truth

        # the encodings are sparse objects: covers and games behave
        assert rounds_needed(tree, 1) <= 6
        sparse_cover(tree, 2).verify(check_radius=4)


class TestDatabasePipeline:
    def test_db_to_structure_to_query(self):
        rng = random.Random(5)
        db = Database(EXAMPLE_5_3_SCHEMA)
        for i in range(1, 25):
            db.insert(
                "Customer",
                (i, f"f{i%3}", f"l{i%2}", "Berlin" if i % 2 else "Rome",
                 "DE" if i % 2 else "IT", f"p{i}"),
            )
        for o in range(1, 60):
            db.insert("Order_", (500 + o, "d", f"n{o}", rng.randint(1, 24), o))

        compiled = group_by_count(CUSTOMER, ["Country"], "Id")
        rows = dict(compiled.execute(db))
        assert rows["DE"] + rows["IT"] == 24

        # the encoded structure supports arbitrary FOC1 on top of the schema
        structure = db.to_structure()
        customers = parse_formula(
            "@eq(#(i, f, l, c, co, p). Customer(i, f, l, c, co, p), 24)"
        )
        assert Foc1Evaluator().model_check(structure, customers)
