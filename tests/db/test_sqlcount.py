"""Tests for the SQL COUNT -> FOC1(P) compilation (Example 5.3)."""

import random

import pytest

from repro.db.database import Database
from repro.db.schema import CUSTOMER, EXAMPLE_5_3_SCHEMA, ORDER
from repro.db.sqlcount import (
    group_by_count,
    join_group_count,
    reference_group_by_count,
    reference_join_group_count,
    reference_total_counts,
    total_counts,
)
from repro.errors import SignatureError


def make_db(seed=0, customers=20, orders=50):
    rng = random.Random(seed)
    db = Database(EXAMPLE_5_3_SCHEMA)
    cities = ["Berlin", "Paris", "Rome"]
    countries = ["DE", "FR", "IT"]
    for i in range(1, customers + 1):
        c = rng.randrange(3)
        db.insert(
            "Customer",
            (i, f"fn{i % 4}", f"ln{i % 3}", cities[c], countries[c], f"p{i}"),
        )
    for o in range(1, orders + 1):
        db.insert(
            "Order_",
            (1000 + o, f"d{o % 5}", f"n{o}", rng.randint(1, customers), o * 10),
        )
    return db


class TestGroupByCount:
    def test_matches_reference(self):
        db = make_db()
        compiled = group_by_count(CUSTOMER, ["Country"], "Id")
        got = sorted(compiled.execute(db))
        assert got == reference_group_by_count(db, CUSTOMER, ["Country"], "Id")

    def test_query_is_foc1(self):
        compiled = group_by_count(CUSTOMER, ["Country"], "Id")
        compiled.query.validate_foc1()

    def test_multi_column_grouping(self):
        db = make_db(seed=3)
        compiled = group_by_count(CUSTOMER, ["Country", "City"], "Id")
        got = sorted(compiled.execute(db))
        assert got == reference_group_by_count(
            db, CUSTOMER, ["Country", "City"], "Id"
        )

    def test_counts_sum_to_rows(self):
        db = make_db(seed=5)
        rows = group_by_count(CUSTOMER, ["City"], "Id").execute(db)
        assert sum(count for *_, count in rows) == db.row_count("Customer")

    def test_paper_literal_semantics_grades_all_values(self):
        db = make_db(seed=1, customers=5, orders=5)
        compiled = group_by_count(
            CUSTOMER, ["Country"], "Id", require_group_exists=False
        )
        rows = compiled.execute(db)
        assert len(rows) == len(db.active_domain())
        as_map = {value: count for value, count in rows}
        for value, count in reference_group_by_count(db, CUSTOMER, ["Country"], "Id"):
            assert as_map[value] == count

    def test_counted_column_validation(self):
        with pytest.raises(SignatureError):
            group_by_count(CUSTOMER, ["Country"], "Country")
        with pytest.raises(SignatureError):
            group_by_count(CUSTOMER, ["Nope"], "Id")


class TestTotalCounts:
    def test_matches_reference(self):
        db = make_db(seed=7)
        compiled = total_counts([CUSTOMER, ORDER])
        assert compiled.execute(db) == [reference_total_counts(db, [CUSTOMER, ORDER])]

    def test_description_mentions_tables(self):
        compiled = total_counts([CUSTOMER, ORDER])
        assert "Customer" in compiled.description and "Order_" in compiled.description


class TestJoinGroupCount:
    def test_matches_reference_with_filter(self):
        db = make_db(seed=11)
        args = (
            CUSTOMER,
            ORDER,
            ("Id", "CustomerId"),
            ["FirstName", "LastName"],
            "Id",
        )
        compiled = join_group_count(*args, filters=[("City", "Berlin")])
        got = sorted(compiled.execute(db))
        want = reference_join_group_count(db, *args, [("City", "Berlin")])
        assert got == want

    def test_matches_reference_without_filter(self):
        db = make_db(seed=13)
        args = (CUSTOMER, ORDER, ("Id", "CustomerId"), ["Country"], "Id")
        compiled = join_group_count(*args)
        assert sorted(compiled.execute(db)) == reference_join_group_count(db, *args)

    def test_customers_without_orders_get_zero(self):
        db = Database(EXAMPLE_5_3_SCHEMA)
        db.insert("Customer", (1, "A", "B", "Berlin", "DE", "p"))
        db.insert("Order_", (9, "d", "n", 2, 10))  # order of a *different* id
        db.insert("Customer", (2, "C", "D", "Paris", "FR", "q"))
        compiled = join_group_count(
            CUSTOMER, ORDER, ("Id", "CustomerId"), ["FirstName"], "Id",
            filters=[("City", "Berlin")],
        )
        assert compiled.execute(db) == [("A", 0)]

    def test_query_is_foc1(self):
        compiled = join_group_count(
            CUSTOMER, ORDER, ("Id", "CustomerId"), ["Country"], "Id"
        )
        compiled.query.validate_foc1()
