"""Tests for schemas and the database -> structure encoding."""

import pytest

from repro.db.database import Database, constant_relation_name
from repro.db.schema import CUSTOMER, EXAMPLE_5_3_SCHEMA, Schema, Table
from repro.errors import ArityError, SignatureError, UniverseError


class TestSchema:
    def test_table_columns(self):
        assert CUSTOMER.arity == 6
        assert CUSTOMER.position("City") == 3
        with pytest.raises(SignatureError):
            CUSTOMER.position("Nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SignatureError):
            Table("T", ("a", "a"))

    def test_empty_columns_rejected(self):
        with pytest.raises(SignatureError):
            Table("T", ())

    def test_schema_lookup(self):
        assert EXAMPLE_5_3_SCHEMA.table("Customer") is CUSTOMER
        with pytest.raises(SignatureError):
            EXAMPLE_5_3_SCHEMA.table("Nope")

    def test_duplicate_tables_rejected(self):
        with pytest.raises(SignatureError):
            Schema((CUSTOMER, Table("Customer", ("Id",))))

    def test_signature(self):
        sig = EXAMPLE_5_3_SCHEMA.signature()
        assert sig["Customer"].arity == 6
        assert sig["Order_"].arity == 5


class TestDatabase:
    @pytest.fixture
    def db(self):
        db = Database(EXAMPLE_5_3_SCHEMA)
        db.insert("Customer", (1, "Ada", "L", "Berlin", "DE", "p1"))
        db.insert("Customer", (2, "Max", "M", "Paris", "FR", "p2"))
        db.insert("Order_", (100, "d1", "n1", 1, 50))
        return db

    def test_insert_and_rows(self, db):
        assert db.row_count("Customer") == 2
        assert (100, "d1", "n1", 1, 50) in db.rows("Order_")

    def test_set_semantics(self, db):
        db.insert("Customer", (1, "Ada", "L", "Berlin", "DE", "p1"))
        assert db.row_count("Customer") == 2

    def test_arity_checked(self, db):
        with pytest.raises(ArityError):
            db.insert("Customer", (1, 2))

    def test_insert_dicts(self, db):
        db.insert_dicts(
            "Order_",
            {"Id": 101, "OrderDate": "d2", "OrderNumber": "n2", "CustomerId": 2, "TotalAmount": 70},
        )
        assert db.row_count("Order_") == 2
        with pytest.raises(SignatureError):
            db.insert_dicts("Order_", {"Id": 1})

    def test_active_domain(self, db):
        domain = db.active_domain()
        assert 1 in domain and "Berlin" in domain and 50 in domain

    def test_to_structure(self, db):
        structure = db.to_structure()
        assert structure.has_tuple("Customer", (1, "Ada", "L", "Berlin", "DE", "p1"))
        assert structure.order() == len(db.active_domain())

    def test_constants(self, db):
        structure = db.to_structure(constants=["Berlin"])
        name = constant_relation_name("Berlin")
        assert structure.relation(name) == frozenset({("Berlin",)})

    def test_missing_constant_rejected(self, db):
        with pytest.raises(UniverseError):
            db.to_structure(constants=["Tokyo"])

    def test_empty_database_rejected(self):
        with pytest.raises(UniverseError):
            Database(EXAMPLE_5_3_SCHEMA).to_structure()

    def test_constant_name_sanitised(self):
        name = constant_relation_name("New York / NY")
        assert name.startswith("Const__")
        assert " " not in name and "/" not in name
