"""Tests for the SUM/AVG/MIN/MAX prototype (open question 1)."""

import random

import pytest

from repro.db.aggregates import (
    AGGREGATES,
    group_by_aggregate,
    reference_group_by_aggregate,
)
from repro.db.database import Database
from repro.db.schema import CUSTOMER, EXAMPLE_5_3_SCHEMA, ORDER
from repro.errors import EvaluationError, SignatureError


def make_db(seed=0, customers=15, orders=40):
    rng = random.Random(seed)
    db = Database(EXAMPLE_5_3_SCHEMA)
    countries = ["DE", "FR", "IT"]
    for i in range(1, customers + 1):
        c = rng.randrange(3)
        db.insert(
            "Customer",
            (i, f"fn{i%4}", f"ln{i%3}", f"city{c}", countries[c], f"p{i}"),
        )
    for o in range(1, orders + 1):
        db.insert(
            "Order_",
            (7000 + o, f"d{o % 4}", f"n{o}", rng.randint(1, customers), rng.randint(5, 300)),
        )
    return db


class TestAggregates:
    @pytest.mark.parametrize("operation", sorted(AGGREGATES))
    def test_matches_reference(self, operation):
        db = make_db(seed=3)
        query = group_by_aggregate(ORDER, ["OrderDate"], "TotalAmount", operation)
        got = query.execute(db)
        want = reference_group_by_aggregate(
            db, ORDER, ["OrderDate"], "TotalAmount", operation
        )
        assert got == want

    def test_sum_semantics_by_hand(self):
        db = Database(EXAMPLE_5_3_SCHEMA)
        db.insert("Order_", (1, "d1", "n1", 10, 100))
        db.insert("Order_", (2, "d1", "n2", 10, 50))
        db.insert("Order_", (3, "d2", "n3", 10, 7))
        query = group_by_aggregate(ORDER, ["OrderDate"], "TotalAmount", "sum")
        assert query.execute(db) == [("d1", 150), ("d2", 7)]

    def test_avg(self):
        db = Database(EXAMPLE_5_3_SCHEMA)
        db.insert("Order_", (1, "d1", "n1", 10, 100))
        db.insert("Order_", (2, "d1", "n2", 10, 50))
        query = group_by_aggregate(ORDER, ["OrderDate"], "TotalAmount", "avg")
        assert query.execute(db) == [("d1", 75)]

    def test_min_max(self):
        db = make_db(seed=9)
        low = dict(
            tuple(row[:-1]) + (row[-1],)
            for row in group_by_aggregate(
                ORDER, ["OrderDate"], "TotalAmount", "min"
            ).execute(db)
        )
        high = dict(
            tuple(row[:-1]) + (row[-1],)
            for row in group_by_aggregate(
                ORDER, ["OrderDate"], "TotalAmount", "max"
            ).execute(db)
        )
        for key in low:
            assert low[key] <= high[key]

    def test_count_agrees_with_sqlcount(self):
        from repro.db.sqlcount import group_by_count

        db = make_db(seed=4)
        via_aggregate = group_by_aggregate(
            CUSTOMER, ["Country"], "Phone", "count", key_column="Id"
        ).execute(db)
        via_count = sorted(group_by_count(CUSTOMER, ["Country"], "Id").execute(db))
        assert via_aggregate == via_count

    def test_non_integer_values_rejected(self):
        db = Database(EXAMPLE_5_3_SCHEMA)
        db.insert("Order_", (1, "d1", "n1", 10, "not-a-number"))
        query = group_by_aggregate(ORDER, ["OrderDate"], "TotalAmount", "sum")
        with pytest.raises(EvaluationError):
            query.execute(db)

    def test_unknown_operation_rejected(self):
        with pytest.raises(SignatureError):
            group_by_aggregate(ORDER, ["OrderDate"], "TotalAmount", "median")

    def test_grouped_target_rejected(self):
        with pytest.raises(SignatureError):
            group_by_aggregate(ORDER, ["TotalAmount"], "TotalAmount", "sum")

    def test_witness_formula_is_foc1(self):
        from repro.logic.foc1 import is_foc1

        query = group_by_aggregate(ORDER, ["OrderDate"], "TotalAmount", "sum")
        formula, variables = query.witness_formula()
        assert is_foc1(formula)
        assert variables[-2:] == ("row_key", "row_value")
