"""Smoke-run the quick example scripts end-to-end as subprocesses.

The long-running scaling study and the brute-force-heavy census example are
exercised by the benchmark harness instead; here we pin down that the
user-facing quickstart scripts execute, self-verify, and print what the
README promises.
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "follower(s)" in output
        assert "Mutual-follow pairs" in output

    def test_sql_count_queries(self):
        output = run_example("sql_count_queries.py")
        assert "Example 5.3 (1)" in output
        assert "No_Of_Customers" in output
        assert "SUM(TotalAmount)" in output

    def test_hardness_reduction(self):
        output = run_example("hardness_reduction.py")
        assert "match: True" in output
        assert "phi-hat in FOC1?: False" in output

    def test_incremental_updates(self):
        output = run_example("incremental_updates.py")
        assert "verified against recompute-from-scratch: OK" in output

    def test_main_algorithm_walkthrough(self):
        output = run_example("main_algorithm_walkthrough.py")
        assert "result equals direct ball-exploration evaluation: OK" in output
        assert "Degree histogram" in output
