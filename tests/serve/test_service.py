"""QueryService integration tests: preemption, batching, degradation,
drain, typed shedding, and executor-thread metrics hygiene.

Everything here runs real engines on small structures; the service's
exact answers are cross-checked against a serial
:class:`~repro.core.evaluator.Foc1Evaluator` run (the byte-identity
contract gets its own 30-seed gate in ``test_differential_service.py``).
"""

import asyncio

import pytest

from repro.core.evaluator import Foc1Evaluator
from repro.errors import AdmissionError, ReproError
from repro.logic.parser import parse_formula
from repro.obs.metrics import (
    MetricsRegistry,
    reset_thread_metrics,
    set_thread_metrics,
)
from repro.serve import QueryRequest, QueryService, TenantQuota
from repro.serve.admission import SHED_REASONS
from repro.structures.builders import graph_structure


def cycle_graph(n):
    vertices = list(range(1, n + 1))
    edges = [(v, v % n + 1) for v in vertices]
    return graph_structure(vertices, edges)


def dense_graph(n):
    vertices = list(range(1, n + 1))
    edges = [(u, v) for u in vertices for v in vertices if u < v]
    return graph_structure(vertices, edges)


SMALL = cycle_graph(4)
PATHS = "E(x, y) & E(y, z)"


def count_request(structure, tenant="t", formula=PATHS, request_id="r"):
    return QueryRequest(
        tenant=tenant,
        operation="count",
        structure=structure,
        expression=formula,
        variables=("x", "y", "z"),
        request_id=request_id,
    )


def exact_count(structure, formula=PATHS, variables=("x", "y", "z")):
    return Foc1Evaluator().count(
        structure, parse_formula(formula), list(variables)
    )


class TestSubmit:
    def test_completes_with_the_exact_answer(self):
        async def scenario():
            async with QueryService(workers=2, quantum_steps=10**6) as service:
                return await service.submit(count_request(SMALL))

        response = asyncio.run(scenario())
        assert response.status == "ok"
        assert response.approximate is False
        assert response.value == exact_count(SMALL)
        assert response.quanta == 1
        assert response.resumes == 0

    def test_check_and_unary_operations(self):
        async def scenario():
            async with QueryService(workers=1, quantum_steps=10**6) as service:
                check = await service.submit(
                    QueryRequest(
                        tenant="t",
                        operation="check",
                        structure=SMALL,
                        expression="forall x. @geq1(#(y). E(x, y))",
                    )
                )
                unary = await service.submit(
                    QueryRequest(
                        tenant="t",
                        operation="unary",
                        structure=SMALL,
                        expression="#(y). E(x, y)",
                        variable="x",
                    )
                )
                return check, unary

        check, unary = asyncio.run(scenario())
        assert check.value is True
        assert dict(unary.value) == {1: 2, 2: 2, 3: 2, 4: 2}

    def test_submit_before_start_is_rejected(self):
        service = QueryService()

        async def scenario():
            await service.submit(count_request(SMALL))

        with pytest.raises(ReproError, match="not started"):
            asyncio.run(scenario())

    def test_malformed_request_rejected_before_admission(self):
        with pytest.raises(ReproError, match="variables"):
            QueryRequest(
                tenant="t", operation="count", structure=SMALL, expression=PATHS
            )

    def test_engine_error_fails_the_future_typed(self):
        # An evaluation failure surfaces from the quantum as the same
        # typed ReproError a direct engine call would raise.  (A merely
        # out-of-fragment formula is NOT an error here: the cascade
        # falls back to the baseline engine and still answers.)
        async def scenario():
            async with QueryService(workers=1, quantum_steps=10**6) as service:
                await service.submit(
                    QueryRequest(
                        tenant="t",
                        operation="count",
                        structure=SMALL,
                        expression="R(x, y)",
                        variables=("x", "y"),
                    )
                )

        with pytest.raises(ReproError, match="signature"):
            asyncio.run(scenario())

    def test_out_of_fragment_falls_back_instead_of_erroring(self):
        async def scenario():
            async with QueryService(workers=1, quantum_steps=10**6) as service:
                return await service.submit(
                    QueryRequest(
                        tenant="t",
                        operation="check",
                        structure=SMALL,
                        expression="exists x. @even(#(y). E(x, y))",
                    )
                )

        response = asyncio.run(scenario())
        assert response.status == "ok"
        assert response.value is True  # every cycle vertex has degree 2


class TestPreemption:
    def test_small_quantum_suspends_resumes_and_stays_exact(self):
        structure = dense_graph(8)
        registry = MetricsRegistry()

        async def scenario():
            async with QueryService(
                workers=2, quantum_steps=30, metrics=registry
            ) as service:
                return await service.submit(count_request(structure))

        response = asyncio.run(scenario())
        assert response.value == exact_count(structure)
        assert response.resumes >= 1
        assert response.quanta == response.resumes + 1
        assert registry.counter("serve.preempt.suspended") >= 1
        assert registry.counter("serve.preempt.resumed") >= 1

    def test_concurrent_preempted_tenants_all_exact(self):
        structures = [dense_graph(6), dense_graph(7), cycle_graph(9)]

        async def scenario():
            async with QueryService(workers=2, quantum_steps=40) as service:
                return await asyncio.gather(
                    *(
                        service.submit(
                            count_request(s, tenant=f"t{i}", request_id=str(i))
                        )
                        for i, s in enumerate(structures)
                    )
                )

        responses = asyncio.run(scenario())
        for structure, response in zip(structures, responses):
            assert response.value == exact_count(structure)
            assert response.status == "ok"


class TestBatching:
    def test_compatible_counts_merge_and_stay_exact(self):
        registry = MetricsRegistry()
        expected = exact_count(SMALL)

        async def scenario():
            # One worker: the first dispatch finds the other tenants'
            # identical counts still queued and collects them.
            async with QueryService(
                workers=1, quantum_steps=10**6, batch_max=8, metrics=registry
            ) as service:
                return await asyncio.gather(
                    *(
                        service.submit(
                            count_request(
                                SMALL, tenant=f"t{i}", request_id=str(i)
                            )
                        )
                        for i in range(4)
                    )
                )

        responses = asyncio.run(scenario())
        assert [r.value for r in responses] == [expected] * 4
        assert any(r.batched for r in responses)
        assert registry.counter("serve.batch.dispatched") >= 1
        assert registry.counter("serve.batch.merged") >= 1

    def test_batch_max_one_disables_batching(self):
        async def scenario():
            async with QueryService(
                workers=1, quantum_steps=10**6, batch_max=1
            ) as service:
                return await asyncio.gather(
                    *(
                        service.submit(
                            count_request(
                                SMALL, tenant=f"t{i}", request_id=str(i)
                            )
                        )
                        for i in range(3)
                    )
                )

        responses = asyncio.run(scenario())
        assert not any(r.batched for r in responses)
        assert {r.value for r in responses} == {exact_count(SMALL)}


class TestShedding:
    def test_burst_beyond_quota_sheds_typed_and_admits_exactly(self):
        registry = MetricsRegistry()

        async def scenario():
            async with QueryService(
                workers=1,
                quantum_steps=10**6,
                quota=TenantQuota(max_inflight=2, max_queue=1),
                batch_max=1,
                metrics=registry,
            ) as service:
                return await asyncio.gather(
                    *(
                        service.submit(
                            count_request(SMALL, tenant="t", request_id=str(i))
                        )
                        for i in range(6)
                    ),
                    return_exceptions=True,
                )

        outcomes = asyncio.run(scenario())
        shed = [o for o in outcomes if isinstance(o, AdmissionError)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert shed, "burst should overflow the quota"
        assert all(error.reason in SHED_REASONS for error in shed)
        assert all(r.value == exact_count(SMALL) for r in served)
        assert len(shed) + len(served) == 6
        assert registry.counter("serve.admitted") == len(served)

    def test_submit_during_drain_sheds_as_draining(self):
        structure = dense_graph(12)

        async def scenario():
            service = QueryService(workers=1, quantum_steps=10)
            await service.start()
            inflight = asyncio.ensure_future(
                service.submit(count_request(structure))
            )
            await asyncio.sleep(0.05)
            drain_task = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.01)  # drain flag set, job still running
            with pytest.raises(AdmissionError) as info:
                await service.submit(
                    count_request(SMALL, tenant="late", request_id="late")
                )
            await drain_task
            response = await inflight
            return info.value.reason, response

        reason, response = asyncio.run(scenario())
        assert reason == "draining"
        assert response.status == "ok"
        assert response.value == exact_count(structure)


class TestDegradation:
    def test_saturation_threshold_degrades_to_flagged_estimate(self):
        structure = dense_graph(8)
        registry = MetricsRegistry()
        expected = exact_count(structure)

        async def scenario():
            # Threshold 0.0: every count-only request degrades at first
            # dispatch; the generous budget factor lets the sampler fit.
            async with QueryService(
                workers=1,
                quantum_steps=2000,
                degrade_saturation=0.0,
                degrade_budget_factor=100,
                epsilon=0.5,
                delta=0.2,
                metrics=registry,
            ) as service:
                return await service.submit(count_request(structure))

        response = asyncio.run(scenario())
        assert response.status == "ok"
        assert response.approximate is True
        assert registry.counter("serve.degraded") == 1
        # Crude is allowed under overload; garbage is not.
        assert 0 <= response.value <= 4 * expected

    def test_degraded_answers_are_seed_deterministic(self):
        structure = dense_graph(8)

        async def one_run():
            async with QueryService(
                workers=1,
                quantum_steps=2000,
                degrade_saturation=0.0,
                degrade_budget_factor=100,
                epsilon=0.5,
                delta=0.2,
            ) as service:
                return await service.submit(
                    QueryRequest(
                        tenant="t",
                        operation="count",
                        structure=structure,
                        expression=PATHS,
                        variables=("x", "y", "z"),
                        seed=7,
                    )
                )

        assert asyncio.run(one_run()).value == asyncio.run(one_run()).value

    def test_non_count_operations_never_degrade(self):
        async def scenario():
            async with QueryService(
                workers=1,
                quantum_steps=10**6,
                degrade_saturation=0.0,
                epsilon=0.5,
                delta=0.2,
            ) as service:
                return await service.submit(
                    QueryRequest(
                        tenant="t",
                        operation="check",
                        structure=SMALL,
                        expression="forall x. @geq1(#(y). E(x, y))",
                    )
                )

        response = asyncio.run(scenario())
        assert response.approximate is False
        assert response.value is True

    def test_exact_only_service_never_degrades(self):
        async def scenario():
            async with QueryService(
                workers=1, quantum_steps=10**6
            ) as service:
                return await service.submit(count_request(dense_graph(6)))

        assert asyncio.run(scenario()).approximate is False


class TestDrain:
    def test_bounded_drain_hands_back_checkpoint_not_orphaned(self):
        structure = dense_graph(14)
        registry = MetricsRegistry()

        async def scenario():
            service = QueryService(
                workers=1, quantum_steps=10, metrics=registry
            )
            await service.start()
            task = asyncio.ensure_future(
                service.submit(count_request(structure))
            )
            await asyncio.sleep(0.05)  # let the first quantum dispatch
            await service.drain(grace=0)
            response = await task
            return response, service.orphaned_checkpoints()

        response, orphaned = asyncio.run(scenario())
        assert response.status == "suspended"
        assert response.checkpoint is not None
        assert response.checkpoint.steps_spent > 0
        assert orphaned == 0
        assert registry.counter("serve.drain.suspended") == 1

    def test_unbounded_drain_finishes_everything(self):
        structures = [dense_graph(6), cycle_graph(8)]

        async def scenario():
            service = QueryService(workers=2, quantum_steps=50)
            await service.start()
            tasks = [
                asyncio.ensure_future(
                    service.submit(
                        count_request(s, tenant=f"t{i}", request_id=str(i))
                    )
                )
                for i, s in enumerate(structures)
            ]
            await asyncio.sleep(0.01)
            await service.drain()  # grace=None: run to completion
            return await asyncio.gather(*tasks)

        responses = asyncio.run(scenario())
        assert all(r.status == "ok" for r in responses)
        for structure, response in zip(structures, responses):
            assert response.value == exact_count(structure)

    def test_stats_shape(self):
        async def scenario():
            async with QueryService(workers=1, quantum_steps=10**6) as service:
                await service.submit(count_request(SMALL))
                return service.stats()

        stats = asyncio.run(scenario())
        for key in (
            "admission",
            "saturation",
            "completed",
            "resumes",
            "degraded",
            "batches",
            "errors",
            "drain_suspended",
            "latency_p50_s",
            "latency_p99_s",
            "orphaned_checkpoints",
            "plan_cache",
        ):
            assert key in stats
        assert stats["completed"] == 1
        assert stats["orphaned_checkpoints"] == 0


class TestThreadMetricsHygiene:
    """Regression: a stale thread-local metrics override on a reused
    executor thread must never swallow a later session's counters."""

    def test_poisoned_executor_thread_is_reset_by_the_quantum(self):
        stale = MetricsRegistry()
        registry = MetricsRegistry()

        async def scenario():
            async with QueryService(
                workers=1, quantum_steps=10**6, metrics=registry
            ) as service:
                loop = asyncio.get_running_loop()
                # Poison the single executor thread the way a buggy
                # earlier task would: install an override and leak it.
                await loop.run_in_executor(
                    service._executor, set_thread_metrics, stale
                )
                response = await service.submit(count_request(SMALL))
                # The quantum must have cleared the override on exit.
                leftover = await loop.run_in_executor(
                    service._executor, reset_thread_metrics
                )
                return response, leftover

        response, leftover = asyncio.run(scenario())
        assert response.value == exact_count(SMALL)
        assert leftover is None
        # The quantum's engine work landed in the service registry, not
        # the stale one from the "finished" session.
        assert stale.snapshot()["counters"] == {}
        assert registry.counter("serve.completed") == 1

    def test_stress_many_quanta_never_leak_into_a_stale_registry(self):
        stale = MetricsRegistry()
        registry = MetricsRegistry()
        structure = dense_graph(7)

        async def scenario():
            async with QueryService(
                workers=2, quantum_steps=60, metrics=registry
            ) as service:
                loop = asyncio.get_running_loop()
                for round_index in range(4):
                    await asyncio.gather(
                        *(
                            loop.run_in_executor(
                                service._executor, set_thread_metrics, stale
                            )
                            for _ in range(2)
                        )
                    )
                    responses = await asyncio.gather(
                        *(
                            service.submit(
                                count_request(
                                    structure,
                                    tenant=f"t{i}",
                                    request_id=f"{round_index}-{i}",
                                )
                            )
                            for i in range(3)
                        )
                    )
                    assert {r.value for r in responses} == {
                        exact_count(structure)
                    }

        asyncio.run(scenario())
        assert stale.snapshot()["counters"] == {}
        assert registry.counter("serve.completed") == 12

    def test_back_to_back_sessions_keep_their_counters_separate(self):
        first = MetricsRegistry()
        second = MetricsRegistry()

        async def session(registry, n):
            async with QueryService(
                workers=1, quantum_steps=10**6, metrics=registry
            ) as service:
                await asyncio.gather(
                    *(
                        service.submit(
                            count_request(SMALL, tenant="t", request_id=str(i))
                        )
                        for i in range(n)
                    )
                )

        asyncio.run(session(first, 2))
        first_completed = first.counter("serve.completed")
        asyncio.run(session(second, 3))
        assert first.counter("serve.completed") == first_completed == 2
        assert second.counter("serve.completed") == 3
