"""Deficit-round-robin scheduler unit tests.

The scheduling currency is evaluation steps: each visited tenant earns
one quantum of deficit per round and pays one quantum per dispatch, so
step-heavy tenants are dispatched proportionally less often — fair
share without wall-clock measurement.
"""

import pytest

from repro.serve import DeficitRoundRobin


def drain(drr, limit=50):
    """Pop until idle (None can interleave while a tenant is in debt)."""
    order = []
    for _ in range(limit):
        picked = drr.next()
        if picked is not None:
            order.append(picked)
        elif len(drr) == 0:
            break
    return order


class TestBasics:
    def test_quantum_must_be_positive(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(0)

    def test_empty_scheduler_is_idle(self):
        drr = DeficitRoundRobin(100)
        assert drr.next() is None
        assert len(drr) == 0

    def test_fifo_within_a_tenant(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "a1")
        drr.push("a", "a2")
        drr.push("a", "a3")
        assert [job for _, job in drain(drr)] == ["a1", "a2", "a3"]

    def test_round_robin_across_tenants(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "a1")
        drr.push("a", "a2")
        drr.push("b", "b1")
        drr.push("b", "b2")
        jobs = [job for _, job in drain(drr)]
        assert jobs == ["a1", "b1", "a2", "b2"]

    def test_push_front_resumes_before_younger_work(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "young")
        drr.push_front("a", "resumed")
        assert drr.next()[1] == "resumed"

    def test_introspection(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "a1")
        drr.push("b", "b1")
        drr.push("b", "b2")
        assert len(drr) == 3
        assert drr.pending("b") == 2
        assert drr.pending("missing") == 0
        assert list(drr.tenants()) == ["a", "b"]
        assert drr.deficit("a") == 0


class TestDeficitAccounting:
    def test_heavy_tenant_yields_to_light_tenants(self):
        # After 'a' overspends by three quanta, 'b' drains its whole
        # queue before 'a' earns its way back to positive deficit.
        quantum = 100
        drr = DeficitRoundRobin(quantum)
        for job in ("a1", "a2"):
            drr.push("a", job)
        for job in ("b1", "b2"):
            drr.push("b", job)
        assert drr.next()[1] == "a1"
        drr.charge("a", 3 * quantum)
        jobs = [job for _, job in drain(drr)]
        assert jobs == ["b1", "b2", "a2"]

    def test_debt_makes_next_return_none_until_earned_back(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "a1")
        drr.push("a", "a2")
        assert drr.next()[1] == "a1"
        drr.charge("a", 250)
        # One visit per next() call earns one quantum; two come up empty.
        assert drr.next() is None
        assert drr.next() is None
        assert drr.next()[1] == "a2"

    def test_credit_refunds_unspent_quantum(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "a1")
        drr.push("a", "a2")
        drr.next()  # pays one quantum for a1, deficit back to 0
        drr.credit("a", 60)  # a1 only spent 40 of its 100
        assert drr.deficit("a") == 60
        assert drr.next()[1] == "a2"  # the credit covers the dispatch

    def test_credit_is_capped_at_one_quantum(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "a1")
        drr.credit("a", 10_000)
        assert drr.deficit("a") == 100

    def test_credit_for_departed_tenant_is_dropped(self):
        # Anti-burst: deficits never outlive the backlog that earned them.
        drr = DeficitRoundRobin(100)
        drr.push("a", "a1")
        drr.next()  # queue empties, 'a' leaves the round
        drr.credit("a", 50)
        assert drr.deficit("a") == 0
        drr.push("a", "a2")
        assert drr.deficit("a") == 0

    def test_charge_for_departed_tenant_is_dropped(self):
        drr = DeficitRoundRobin(100)
        drr.charge("ghost", 500)
        drr.push("ghost", "g1")
        assert drr.next()[1] == "g1"  # no inherited debt


class TestCollect:
    def test_collects_matching_heads_up_to_limit(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "c1")
        drr.push("a", "x1")
        drr.push("a", "c2")
        drr.push("b", "c3")
        collected = drr.collect(lambda job: job.startswith("c"), limit=2)
        assert collected == [("a", "c1"), ("a", "c2")]
        # The non-matching job keeps its place; 'b' was never reached.
        assert drr.pending("a") == 1
        assert drr.pending("b") == 1

    def test_collect_spans_tenants(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "c1")
        drr.push("b", "c2")
        collected = drr.collect(lambda job: True, limit=8)
        assert collected == [("a", "c1"), ("b", "c2")]
        assert len(drr) == 0

    def test_emptied_tenant_leaves_the_round(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "c1")
        drr.collect(lambda job: True, limit=1)
        assert list(drr.tenants()) == []
        assert drr.deficit("a") == 0

    def test_zero_limit_collects_nothing(self):
        drr = DeficitRoundRobin(100)
        drr.push("a", "c1")
        assert drr.collect(lambda job: True, limit=0) == []
        assert len(drr) == 1


class TestDeterminism:
    def test_same_push_sequence_same_dispatch_order(self):
        def run():
            drr = DeficitRoundRobin(70)
            for tenant, job in [
                ("a", "a1"), ("b", "b1"), ("a", "a2"), ("c", "c1"),
                ("b", "b2"), ("c", "c2"), ("a", "a3"),
            ]:
                drr.push(tenant, job)
            drr.charge("a", 140)
            return drain(drr)

        assert run() == run()
