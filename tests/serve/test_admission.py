"""Admission controller unit tests: bounds, typed sheds, lifecycle.

The overload contract (docs/SERVING.md): every refusal is an immediate
:class:`~repro.errors.AdmissionError` with a machine-readable ``reason``
matching a ``serve.shed.<reason>`` counter — never an unbounded queue,
never a silent drop.
"""

import pytest

from repro.errors import AdmissionError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.serve import AdmissionController, TenantQuota
from repro.serve.admission import SHED_REASONS


class TestTenantQuota:
    def test_defaults(self):
        quota = TenantQuota()
        assert quota.max_inflight == 8
        assert quota.max_queue == 6
        assert quota.step_quota is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"max_inflight": -2},
            {"max_queue": -1},
            {"step_quota": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)

    def test_zero_queue_is_legal(self):
        # max_queue=0 is the "shed everything" configuration: every
        # admit passes through the queued state first.
        assert TenantQuota(max_queue=0).max_queue == 0

    def test_controller_rejects_bad_global_ceiling(self):
        with pytest.raises(ValueError):
            AdmissionController(max_total_inflight=0)


class TestShedReasons:
    def test_admission_error_is_typed_and_a_repro_error(self):
        controller = AdmissionController(TenantQuota(max_queue=0))
        with pytest.raises(AdmissionError) as info:
            controller.admit("a")
        assert isinstance(info.value, ReproError)
        assert info.value.reason == "queue_full"
        assert info.value.tenant == "a"

    def test_queue_full(self):
        controller = AdmissionController(TenantQuota(max_inflight=4, max_queue=1))
        controller.admit("a")
        with pytest.raises(AdmissionError, match="queue full") as info:
            controller.admit("a")
        assert info.value.reason == "queue_full"

    def test_concurrency(self):
        controller = AdmissionController(TenantQuota(max_inflight=2, max_queue=5))
        controller.admit("a")
        controller.admit("a")
        controller.start("a")
        controller.start("a")
        with pytest.raises(AdmissionError) as info:
            controller.admit("a")
        assert info.value.reason == "concurrency"

    def test_saturated_global_ceiling_spans_tenants(self):
        controller = AdmissionController(
            TenantQuota(max_inflight=8, max_queue=8), max_total_inflight=2
        )
        controller.admit("a")
        controller.admit("b")
        with pytest.raises(AdmissionError) as info:
            controller.admit("c")
        assert info.value.reason == "saturated"

    def test_draining_refuses_everything_first(self):
        # Draining outranks every other reason, even for a tenant that
        # would also be over quota.
        controller = AdmissionController(TenantQuota(max_queue=0))
        controller.draining = True
        with pytest.raises(AdmissionError) as info:
            controller.admit("a")
        assert info.value.reason == "draining"

    def test_step_quota_and_refill(self):
        controller = AdmissionController(
            TenantQuota(max_inflight=8, max_queue=8, step_quota=100)
        )
        controller.charge_steps("a", 100)
        with pytest.raises(AdmissionError) as info:
            controller.admit("a")
        assert info.value.reason == "steps"
        controller.refill("a")
        controller.admit("a")  # new window, admitted again

    def test_step_quota_is_per_tenant(self):
        controller = AdmissionController(
            TenantQuota(max_inflight=8, max_queue=8, step_quota=50)
        )
        controller.charge_steps("heavy", 999)
        controller.admit("light")  # unaffected

    def test_every_reason_has_a_counter_slot(self):
        snapshot = AdmissionController().snapshot()
        assert set(snapshot["shed"]) == set(SHED_REASONS)


class TestLifecycle:
    def test_admit_start_release_counts(self):
        controller = AdmissionController()
        controller.admit("a")
        assert controller.inflight("a") == 1
        assert controller.snapshot()["queued"]["a"] == 1
        controller.start("a")
        assert controller.inflight("a") == 1
        assert controller.snapshot()["running"]["a"] == 1
        controller.release("a")
        assert controller.inflight("a") == 0

    def test_requeue_moves_running_back_to_queued(self):
        controller = AdmissionController()
        controller.admit("a")
        controller.start("a")
        controller.requeue("a")
        snapshot = controller.snapshot()
        assert snapshot["queued"]["a"] == 1
        assert snapshot["running"]["a"] == 0

    def test_requeued_request_still_holds_its_inflight_slot(self):
        # A preempted request is not a new admission: it keeps its slot,
        # so the tenant's quota is unchanged by suspend/resume cycles.
        controller = AdmissionController(TenantQuota(max_inflight=1, max_queue=1))
        controller.admit("a")
        controller.start("a")
        controller.requeue("a")
        with pytest.raises(AdmissionError):
            controller.admit("a")

    def test_per_tenant_quota_override(self):
        controller = AdmissionController(
            TenantQuota(max_inflight=1, max_queue=0),
            per_tenant={"vip": TenantQuota(max_inflight=8, max_queue=8)},
        )
        controller.admit("vip")
        controller.admit("vip")
        with pytest.raises(AdmissionError):
            controller.admit("basic")

    def test_charge_steps_ignores_nonpositive(self):
        controller = AdmissionController()
        controller.charge_steps("a", 0)
        controller.charge_steps("a", -5)
        assert controller.snapshot()["steps_spent"] == {}


class TestMetrics:
    def test_counters_track_admits_and_sheds(self):
        registry = MetricsRegistry()
        controller = AdmissionController(
            TenantQuota(max_inflight=4, max_queue=1), metrics=registry
        )
        controller.admit("a")
        with pytest.raises(AdmissionError):
            controller.admit("a")
        controller.start("a")
        controller.release("a")
        assert registry.counter("serve.admitted") == 1
        assert registry.counter("serve.shed.queue_full") == 1
        assert registry.counter("serve.tenant.a.admitted") == 1
        assert registry.counter("serve.tenant.a.shed") == 1
        assert registry.counter("serve.tenant.a.completed") == 1

    def test_snapshot_aggregates(self):
        controller = AdmissionController(TenantQuota(max_inflight=4, max_queue=1))
        controller.admit("a")
        for _ in range(3):
            with pytest.raises(AdmissionError):
                controller.admit("a")
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == 1
        assert snapshot["shed_total"] == 3
        assert snapshot["shed"]["queue_full"] == 3
        assert snapshot["draining"] is False
