"""30-seed differential gate: service answers == unloaded serial run.

The contract under test (ISSUE #10): answers produced through the full
service path — admission, deficit-round-robin scheduling, preemption
with checkpoint/resume, plan-cache sharing, batching — are byte-identical
to what an unloaded serial :class:`~repro.core.evaluator.Foc1Evaluator`
produces, at every worker count, even when a query is suspended and
resumed multiple times mid-flight.

Reuses the load harness's query catalogue and serial oracle
(``tools/load_runner.py``) so the gate and the benchmark exercise the
same workload shapes.
"""

import asyncio
import random

import pytest

from repro.serve import QueryRequest, QueryService
from tools.load_runner import QUERIES, _expected_value, _random_graph

SEEDS = range(30)
# Small enough to keep 30x3 runs fast, large enough that the quantum
# below forces several suspend/resume cycles on the join queries.
QUANTUM_STEPS = 30
HEAVY = QUERIES[0]  # the 3-variable join: guaranteed multi-quantum


def build_case(seed):
    """One seeded case: a structure, requests, and serial answers."""
    rng = random.Random(seed)
    structure = _random_graph(rng, max_n=8)
    picks = [HEAVY] + [
        QUERIES[rng.randrange(len(QUERIES))] for _ in range(2)
    ]
    requests, expected = [], {}
    for index, (operation, text, variables, variable) in enumerate(picks):
        request_id = f"s{seed}-r{index}"
        requests.append(
            QueryRequest(
                tenant=f"t{index}",
                operation=operation,
                structure=structure,
                expression=text,
                variables=variables,
                variable=variable,
                request_id=request_id,
            )
        )
        expected[request_id] = _expected_value(
            structure, operation, text, variables, variable
        )
    return requests, expected


def normalise(operation, value):
    return dict(value) if operation == "unary" else value


async def run_through_service(requests, workers):
    async with QueryService(
        workers=workers, quantum_steps=QUANTUM_STEPS
    ) as service:
        return await asyncio.gather(
            *(service.submit(request) for request in requests)
        )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_service_matches_serial_oracle_over_30_seeds(workers):
    mismatches = []
    total_resumes = 0
    max_resumes = 0
    for seed in SEEDS:
        requests, expected = build_case(seed)
        responses = asyncio.run(run_through_service(requests, workers))
        for request, response in zip(requests, responses):
            assert response.status == "ok"
            assert response.approximate is False
            got = normalise(request.operation, response.value)
            want = normalise(request.operation, expected[request.request_id])
            if got != want or repr(got) != repr(want):
                mismatches.append(
                    (workers, seed, request.request_id, want, got)
                )
            total_resumes += response.resumes
            max_resumes = max(max_resumes, response.resumes)
    assert mismatches == []
    # The gate must actually cover the preemption path: across 30 seeds
    # some queries were suspended, and at least one more than once.
    assert total_resumes > 0
    assert max_resumes >= 2
