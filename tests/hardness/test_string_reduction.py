"""Tests for the Theorem 4.3 reduction: FO on graphs -> FOC({P=}) on strings."""

import pytest
from hypothesis import given, settings

from repro.core.evaluator import Foc1Evaluator
from repro.errors import FormulaError
from repro.hardness.string_reduction import (
    build_string,
    reduce_instance,
    run_term,
    same_block,
    translate_sentence,
)
from repro.logic.foc1 import is_foc1
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate, satisfies
from repro.structures.builders import graph_structure

from ..conftest import small_graphs

ENGINE = Foc1Evaluator(check_fragment=False)

SENTENCES = [
    "exists x. exists y. E(x, y)",
    "forall x. exists y. E(x, y)",
    "exists x. !(exists y. E(x, y))",
    "exists x. exists y. exists z. (E(x, y) & E(y, z) & E(x, z))",
]


class TestGadget:
    def test_word_layout(self):
        g = graph_structure([1, 2], [(1, 2)])
        reduction = build_string(g)
        # s_1 = a c b cc ; s_2 = a cc b c
        assert reduction.word == "acbccaccbc"
        assert reduction.vertex_map == {1: 1, 2: 6}

    def test_isolated_vertices_have_no_b(self):
        g = graph_structure([1, 2], [])
        assert build_string(g).word == "acacc"

    def test_quadratic_size_bound(self):
        for n in (2, 4, 8):
            g = graph_structure(range(1, n + 1), [(i, i + 1) for i in range(1, n)])
            s = build_string(g).string
            assert s.order() <= 4 * (n + 1) ** 2

    def test_run_term_counts_c_run(self):
        g = graph_structure([1, 2], [(1, 2)])
        reduction = build_string(g)
        term = run_term("p", "t")
        # position 1 is the 'a' of vertex 1: run c^1
        assert evaluate(term, reduction.string, {"p": 1}) == 1
        # position 6 is the 'a' of vertex 2: run c^2
        assert evaluate(term, reduction.string, {"p": 6}) == 2

    def test_same_block(self):
        g = graph_structure([1, 2], [(1, 2)])
        s = build_string(g).string
        phi = same_block("x", "y", "t")
        assert satisfies(s, phi, {"x": 1, "y": 3})  # b at 3 in block of a at 1
        assert not satisfies(s, phi, {"x": 1, "y": 6})  # next block's a
        assert not satisfies(s, phi, {"x": 1, "y": 8})  # inside next block


class TestTranslation:
    def test_output_is_foc_but_not_foc1(self):
        phi_hat = translate_sentence(parse_formula(SENTENCES[0]))
        assert not is_foc1(phi_hat)

    def test_free_variables_rejected(self):
        with pytest.raises(FormulaError):
            translate_sentence(parse_formula("E(x, y)"))


class TestEquivalence:
    @pytest.mark.parametrize("source", SENTENCES)
    def test_equivalence_on_fixed_graphs(self, source):
        graphs = [
            graph_structure([1], []),
            graph_structure([1, 2], [(1, 2)]),
            graph_structure([1, 2, 3], [(1, 2), (2, 3)]),
            graph_structure([1, 2, 3], [(1, 2), (2, 3), (3, 1)]),
            graph_structure([1, 2, 3, 4], [(1, 2), (3, 4)]),
        ]
        phi = parse_formula(source)
        for g in graphs:
            string, phi_hat = reduce_instance(g, phi)
            assert satisfies(g, phi) == ENGINE.model_check(string, phi_hat), (
                source,
                sorted(g.relation("E")),
            )

    @given(small_graphs(min_vertices=1, max_vertices=4))
    @settings(max_examples=6, deadline=None)
    def test_edge_detection_random(self, structure):
        phi = parse_formula(SENTENCES[0])
        string, phi_hat = reduce_instance(structure, phi)
        assert satisfies(structure, phi) == ENGINE.model_check(string, phi_hat)
