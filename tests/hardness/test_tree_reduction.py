"""Tests for the Theorem 4.1 reduction: FO on graphs -> FOC({P=}) on trees."""

import pytest
from hypothesis import given, settings

from repro.core.evaluator import Foc1Evaluator
from repro.errors import FormulaError
from repro.hardness.tree_reduction import (
    build_tree,
    psi_a,
    psi_b,
    psi_c,
    psi_e,
    reduce_instance,
    translate_sentence,
)
from repro.logic.foc1 import is_foc1
from repro.logic.parser import parse_formula
from repro.logic.semantics import satisfies
from repro.logic.syntax import expression_size, free_variables
from repro.structures.builders import graph_structure
from repro.structures.gaifman import distance, is_connected

from ..conftest import small_graphs

ENGINE = Foc1Evaluator(check_fragment=False)

SENTENCES = [
    "exists x. exists y. E(x, y)",
    "exists x. exists y. exists z. (E(x, y) & E(y, z) & E(x, z))",
    "forall x. exists y. E(x, y)",
    "exists x. !(exists y. E(x, y))",
    "forall x. forall y. (E(x, y) -> exists z. (E(y, z) & !(z = x)))",
]


def _sample_graph(seed):
    import random

    rng = random.Random(seed)
    n = rng.randint(1, 5)
    edges = [
        (u, v)
        for u in range(1, n + 1)
        for v in range(u + 1, n + 1)
        if rng.random() < 0.45
    ]
    return graph_structure(range(1, n + 1), edges)


class TestGadget:
    def test_tree_is_a_tree(self):
        g = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
        reduction = build_tree(g)
        tree = reduction.tree
        assert is_connected(tree)
        assert len(tree.relation("E")) == 2 * (tree.order() - 1)

    def test_height_at_most_three(self):
        g = graph_structure([1, 2, 3, 4], [(1, 2), (3, 4), (2, 3)])
        tree = build_tree(g).tree
        root = ("r",)
        assert all(distance(tree, root, v) <= 3 for v in tree.universe_order)

    def test_quadratic_size_bound(self):
        """||T_G|| = O(||G||^2) — the reduction is polynomial."""
        for n in (2, 4, 8, 16):
            g = graph_structure(
                range(1, n + 1), [(i, i + 1) for i in range(1, n)]
            )
            tree = build_tree(g).tree
            assert tree.size() <= 20 * (g.size() ** 2)

    def test_vertex_map_identifies_by_b_count(self):
        g = graph_structure([10, 20], [(10, 20)])
        reduction = build_tree(g)
        tree = reduction.tree
        adjacency = tree.adjacency()
        for index, vertex in enumerate([10, 20], start=1):
            a_vertex = reduction.vertex_map[vertex]
            b_children = [w for w in adjacency[a_vertex] if w[0] == "b"]
            assert len(b_children) == index + 1

    def test_vertex_classification_formulas(self):
        g = graph_structure([1, 2], [(1, 2)])
        tree = build_tree(g).tree
        kinds = {"a": psi_a, "b": psi_b, "c": psi_c, "e": psi_e}
        for vertex in tree.universe_order:
            for kind, formula in kinds.items():
                expected = vertex[0] == kind
                assert (
                    satisfies(tree, formula("x"), {"x": vertex}) == expected
                ), (vertex, kind)


class TestTranslation:
    def test_output_is_foc_but_not_foc1(self):
        phi_hat = translate_sentence(parse_formula(SENTENCES[0]))
        assert not free_variables(phi_hat)
        assert not is_foc1(phi_hat)

    def test_polynomial_formula_growth(self):
        sizes = []
        for depth in (1, 2, 3, 4):
            quantifiers = "".join(f"exists x{i}. " for i in range(depth))
            body = " & ".join(f"E(x0, x{i})" for i in range(1, depth)) or "E(x0, x0)"
            phi = parse_formula(quantifiers + "(" + body + ")")
            sizes.append(expression_size(translate_sentence(phi)))
        # growth should be at most linear in the input size here
        assert sizes[-1] < sizes[0] * 10

    def test_free_variables_rejected(self):
        with pytest.raises(FormulaError):
            translate_sentence(parse_formula("E(x, y)"))

    def test_non_graph_signature_rejected(self):
        with pytest.raises(FormulaError):
            translate_sentence(parse_formula("exists x. R(x)"))


class TestEquivalence:
    """The headline property: G |= phi  iff  T_G |= phi-hat."""

    @pytest.mark.parametrize("source", SENTENCES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equivalence_on_samples(self, source, seed):
        g = _sample_graph(seed)
        phi = parse_formula(source)
        tree, phi_hat = reduce_instance(g, phi)
        assert satisfies(g, phi) == ENGINE.model_check(tree, phi_hat)

    @given(small_graphs(min_vertices=1, max_vertices=4))
    @settings(max_examples=8, deadline=None)
    def test_triangle_detection_random(self, structure):
        phi = parse_formula(SENTENCES[1])
        tree, phi_hat = reduce_instance(structure, phi)
        assert satisfies(structure, phi) == ENGINE.model_check(tree, phi_hat)
