"""Chaos harness: seeded faults at the parallel sites, healed or salvaged.

The differential gate for PR 5 (see docs/ROBUSTNESS.md): for seeded
random structures, injecting deterministic faults at each parallel fault
site (``worker.task``, ``worker.join``, ``shard.result``) on both the
thread and the process backend must

* with ``retries=2``: produce **byte-identical** answers to the fault-free
  serial run (the retry genuinely healed the shard), and
* with ``retries=0`` and ``on_shard_failure="salvage"``: produce a
  :class:`~repro.robust.PartialResult` whose covered values are *exactly*
  the corresponding slice of the serial answer, with accurate coverage
  bookkeeping.

Rate-mode schedules are pure functions of ``(seed, site, hit)`` checked in
the parent, so the same chaos schedule falls out of every backend; the
cross-backend tests pin that down.

Plain ``random.Random(seed)`` so each case is a fixed, individually
re-runnable pytest id.
"""

import random
from functools import lru_cache

import pytest

from repro.core.clterms import BasicClTerm, CoverTerm
from repro.core.cover_eval import evaluate_per_cluster
from repro.core.evaluator import Foc1Evaluator
from repro.core.main_algorithm import evaluate_unary_main_algorithm
from repro.logic.builder import Rel
from repro.logic.parser import parse_formula
from repro.robust import (
    PARALLEL_FAULT_SITES,
    FaultInjector,
    PartialResult,
    RetryPolicy,
    inject_faults,
)
from repro.sparse.covers import sparse_cover
from repro.structures.builders import graph_structure

E = Rel("E", 2)

SEEDS = range(30)
BACKENDS = ("thread", "process")


def _retry(retries=2):
    return RetryPolicy(retries=retries, base_delay=0.0)


def _random_graph(rng, max_n=10):
    n = rng.randint(3, max_n)
    vertices = list(range(1, n + 1))
    pairs = [(u, v) for u in vertices for v in vertices if u < v]
    edges = [pair for pair in pairs if rng.random() < 0.3]
    return graph_structure(vertices, edges)


def _degree_cover_term():
    return CoverTerm(
        variables=("y1", "y2"),
        edges=frozenset({(1, 2)}),
        link_distance=1,
        component_formulas=((frozenset({1, 2}), E("y1", "y2")),),
        unary=True,
    )


@lru_cache(maxsize=None)
def _per_cluster_case(seed):
    """(structure, cover, term, fault-free serial baseline) for one seed."""
    rng = random.Random(8000 + seed)
    structure = _random_graph(rng)
    cover = sparse_cover(structure, 2)
    term = _degree_cover_term()
    serial = evaluate_per_cluster(structure, cover, term, workers=1)
    return structure, cover, term, serial


def _assert_partial_slice_of(partial, serial):
    """The salvage contract: exact covered values, honest bookkeeping."""
    assert isinstance(partial, PartialResult)
    assert partial.failures
    assert partial.covered == len(partial.value)
    assert partial.expected == len(serial)
    assert 0.0 <= partial.coverage < 1.0
    # Byte-identical slice: same values in the same insertion order.
    expected_slice = [
        (key, value) for key, value in serial.items() if key in partial.value
    ]
    assert list(partial.value.items()) == expected_slice


class TestChaosPerCluster:
    """The ISSUE-mandated matrix: 30 seeds × 3 sites × 2 backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("site", PARALLEL_FAULT_SITES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_retries_heal_to_byte_identical(self, seed, site, backend):
        structure, cover, term, serial = _per_cluster_case(seed)
        injector = FaultInjector({site: 1})
        with inject_faults(injector):
            healed = evaluate_per_cluster(
                structure,
                cover,
                term,
                workers=2,
                backend=backend,
                retry=_retry(),
            )
        assert list(healed.items()) == list(serial.items())
        if len(cover.clusters) > 1:
            # The pool fanned out, so the fault genuinely fired — and the
            # retry healed it (exact-hit faults fire exactly once).
            assert injector.fired[site] == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("site", PARALLEL_FAULT_SITES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_salvage_returns_exact_partial_result(self, seed, site, backend):
        structure, cover, term, serial = _per_cluster_case(seed)
        injector = FaultInjector({site: 1})
        with inject_faults(injector):
            result = evaluate_per_cluster(
                structure,
                cover,
                term,
                workers=2,
                backend=backend,
                on_shard_failure="salvage",
            )
        if len(cover.clusters) <= 1:
            # Single shard: no fan-out, no fault checkpoint, full answer.
            assert list(result.items()) == list(serial.items())
            return
        _assert_partial_slice_of(result, serial)
        # Hit 1 always lands on shard 0.
        assert result.failed_shards() == [0]
        assert result.failures[0].error_type == "FaultInjectedError"
        # Per-cluster failures carry the lost *cluster ids*; expanding
        # them to members accounts for exactly the missing elements.
        lost = {
            member
            for index in result.failed_items()
            for member in cover.members_with_cluster(index)
        }
        assert lost == set(serial) - set(result.value)


class TestChaosDeterminism:
    """Rate-mode chaos: one schedule, every backend, every run."""

    def _run(self, seed, backend):
        structure, cover, term, serial = _per_cluster_case(seed)
        injector = FaultInjector(
            seed=seed, rate=0.35, rate_sites=PARALLEL_FAULT_SITES
        )
        with inject_faults(injector):
            result = evaluate_per_cluster(
                structure,
                cover,
                term,
                workers=2,
                backend=backend,
                retry=_retry(retries=1),
                on_shard_failure="salvage",
            )
        if isinstance(result, PartialResult):
            fingerprint = (
                tuple(result.failed_shards()),
                tuple(result.value.items()),
            )
        else:
            fingerprint = ((), tuple(result.items()))
        return fingerprint, dict(injector.hits), dict(injector.fired)

    @pytest.mark.parametrize("seed", (0, 3, 11, 17, 26))
    def test_same_schedule_across_backends(self, seed):
        assert self._run(seed, "thread") == self._run(seed, "process")

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", (2, 9))
    def test_same_schedule_across_runs(self, seed, backend):
        assert self._run(seed, backend) == self._run(seed, backend)

    @pytest.mark.parametrize("seed", (4, 13))
    def test_salvaged_values_stay_exact_under_rate_chaos(self, seed):
        structure, cover, term, serial = _per_cluster_case(seed)
        injector = FaultInjector(
            seed=seed, rate=0.5, rate_sites=PARALLEL_FAULT_SITES
        )
        with inject_faults(injector):
            result = evaluate_per_cluster(
                structure,
                cover,
                term,
                workers=2,
                on_shard_failure="salvage",
            )
        if isinstance(result, PartialResult):
            _assert_partial_slice_of(result, serial)
        else:
            assert list(result.items()) == list(serial.items())


class TestChaosCountMany:
    FORMULA = "E(x, y)"

    @lru_cache(maxsize=None)
    def _case(self, seed):
        rng = random.Random(9000 + seed)
        structures = tuple(
            _random_graph(rng, max_n=6) for _ in range(rng.randint(3, 5))
        )
        phi = parse_formula(self.FORMULA)
        serial = [
            Foc1Evaluator().count(s, phi, ["x", "y"]) for s in structures
        ]
        return structures, phi, serial

    @pytest.mark.parametrize("process", (False, True))
    @pytest.mark.parametrize("site", PARALLEL_FAULT_SITES)
    @pytest.mark.parametrize("seed", (0, 5, 12, 21))
    def test_retries_heal(self, seed, site, process):
        structures, phi, serial = self._case(seed)
        engine = Foc1Evaluator(
            workers=2,
            parallel_backend="process" if process else "thread",
            retry=_retry(),
        )
        injector = FaultInjector({site: 1})
        with inject_faults(injector):
            counts = engine.count_many(list(structures), phi, ["x", "y"])
        assert counts == serial
        assert injector.fired[site] == 1

    @pytest.mark.parametrize("process", (False, True))
    @pytest.mark.parametrize("site", PARALLEL_FAULT_SITES)
    @pytest.mark.parametrize("seed", (1, 8))
    def test_salvage_leaves_none_holes(self, seed, site, process):
        structures, phi, serial = self._case(seed)
        engine = Foc1Evaluator(
            workers=2,
            parallel_backend="process" if process else "thread",
            on_shard_failure="salvage",
        )
        injector = FaultInjector({site: 1})
        with inject_faults(injector):
            result = engine.count_many(list(structures), phi, ["x", "y"])
        assert isinstance(result, PartialResult)
        assert result.value[0] is None  # hit 1 lands on batch position 0
        assert result.value[1:] == serial[1:]
        assert result.expected == len(structures)
        assert result.covered == len(structures) - 1
        assert result.coverage == pytest.approx(
            (len(structures) - 1) / len(structures)
        )


class TestChaosMainAlgorithm:
    @lru_cache(maxsize=None)
    def _case(self, seed):
        rng = random.Random(9500 + seed)
        structure = _random_graph(rng)
        term = BasicClTerm(
            ("y1", "y2"), E("y1", "y2"), 1, 1, frozenset({(1, 2)}), unary=True
        )
        serial = evaluate_unary_main_algorithm(structure, term, workers=1)
        return structure, term, serial

    @pytest.mark.parametrize("site", PARALLEL_FAULT_SITES)
    @pytest.mark.parametrize("seed", (0, 6, 14, 23))
    def test_retries_heal(self, seed, site):
        structure, term, serial = self._case(seed)
        injector = FaultInjector({site: 1})
        with inject_faults(injector):
            healed = evaluate_unary_main_algorithm(
                structure, term, workers=2, retry=_retry()
            )
        assert list(healed.items()) == list(serial.items())

    @pytest.mark.parametrize("site", PARALLEL_FAULT_SITES)
    @pytest.mark.parametrize("seed", (3, 10))
    def test_salvage_covers_surviving_clusters(self, seed, site):
        structure, term, serial = self._case(seed)
        injector = FaultInjector({site: 1})
        with inject_faults(injector):
            result = evaluate_unary_main_algorithm(
                structure, term, workers=2, on_shard_failure="salvage"
            )
        if isinstance(result, PartialResult):
            assert result.covered == len(result.value)
            assert result.expected == len(serial)
            expected_slice = [
                (k, v) for k, v in serial.items() if k in result.value
            ]
            assert list(result.value.items()) == expected_slice
        else:
            # Single shard: no fan-out, so no fault and a full answer.
            assert list(result.items()) == list(serial.items())
