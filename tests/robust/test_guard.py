"""Tests for the fallback cascade (:class:`repro.robust.RobustEvaluator`).

Includes the two acceptance scenarios from the robustness issue: the
kill-switch (an adversarial dense-graph query under a tight budget dies
quickly with :class:`BudgetExceededError`) and graceful degradation (with
faults injected into the main algorithm and cover stages, the cascade still
returns the exact baseline-verified answer and the report names the failed
stages).
"""

import time

import pytest

from repro.core.local_eval import evaluate_basic_unary
from repro.errors import BudgetExceededError, FragmentError, ReproError
from repro.logic.parser import parse_formula
from repro.robust import (
    CircuitBreaker,
    EvaluationBudget,
    FaultInjector,
    PartialResult,
    RetryPolicy,
    RobustEvaluator,
    inject_faults,
)
from repro.robust.guard import STAGES, RobustReport, StageReport
from repro.structures.builders import complete_graph, grid_graph, path_graph

from repro import Atom, BasicClTerm


@pytest.fixture
def degree_term():
    """#(y2). (E(y1, y2) ∧ dist(y1, y2) <= 1) — the vertex degree."""
    return BasicClTerm(
        ("y1", "y2"), Atom("E", ("y1", "y2")), 0, 1, frozenset({(1, 2)}), unary=True
    )


@pytest.fixture
def grid():
    # Order 25 > the main algorithm's small_threshold, so the cover and
    # removal machinery genuinely runs (and can genuinely be faulted).
    return grid_graph(5, 5)


class TestEngineMirror:
    def test_model_check_answered_by_foc1(self):
        engine = RobustEvaluator()
        sentence = parse_formula("forall x. @eq(#(y). E(x, y), 2)")
        assert engine.model_check(path_graph(5), sentence) is False
        report = engine.last_report
        assert report.operation == "model_check"
        assert report.answered_by == "foc1"
        assert report.stage("main_algorithm").status == "skipped"
        assert report.stage("baseline").status == "skipped"
        assert report.succeeded()

    def test_count_matches_plain_engines(self, fast_evaluator, brute_evaluator):
        engine = RobustEvaluator()
        structure = path_graph(6)
        phi = parse_formula("E(x, y) & E(y, z)")
        robust = engine.count(structure, phi, ["x", "y", "z"])
        assert robust == fast_evaluator.count(structure, phi, ["x", "y", "z"])
        assert robust == brute_evaluator.count(structure, phi, ["x", "y", "z"])

    def test_ground_term_and_unary_values(self):
        engine = RobustEvaluator()
        structure = path_graph(4)
        from repro.logic.parser import parse_term

        assert engine.ground_term_value(structure, parse_term("#(x, y). E(x, y)")) == 6
        values = engine.unary_term_values(structure, parse_term("#(y). E(x, y)"), "x")
        assert values == {1: 1, 2: 2, 3: 2, 4: 1}

    def test_evaluate_query(self):
        from repro import Foc1Query, Rel, count, variables

        E = Rel("E", 2)
        x, y = variables("x y")
        degree = count([y], E(x, y))
        q = Foc1Query(head_variables=(x,), head_terms=(degree,), condition=degree.geq1())
        engine = RobustEvaluator()
        assert sorted(engine.evaluate_query(path_graph(3), q)) == [(1, 1), (2, 2), (3, 1)]

    def test_out_of_fragment_falls_through_to_baseline(self):
        # FOC(P) \ FOC1(P): the fragment check fails the foc1 stage, the
        # brute-force baseline still answers exactly.
        engine = RobustEvaluator()
        sentence = parse_formula(
            "exists x. exists y. (!(x = y) & @eq(#(z). E(x, z), #(z). E(y, z)))"
        )
        assert engine.model_check(complete_graph(4), sentence) is True
        report = engine.last_report
        assert report.answered_by == "baseline"
        assert report.failed_stages() == ["foc1"]
        assert report.stage("foc1").error_type == "FragmentError"


class TestFullCascade:
    def test_main_algorithm_answers_when_healthy(self, grid, degree_term):
        engine = RobustEvaluator()
        values = engine.evaluate_unary_cl_term(grid, degree_term)
        assert values == evaluate_basic_unary(grid, degree_term)
        assert engine.last_report.answered_by == "main_algorithm"
        assert engine.last_report.failed_stages() == []

    def test_non_unary_term_rejected(self, grid):
        term = BasicClTerm(
            ("y1", "y2"), Atom("E", ("y1", "y2")), 0, 1, frozenset({(1, 2)}), unary=False
        )
        with pytest.raises(ReproError):
            RobustEvaluator().evaluate_unary_cl_term(grid, term)

    @pytest.mark.parametrize("site", ["cover.construct", "removal.surgery"])
    def test_single_fault_degrades_to_foc1(self, grid, degree_term, site):
        truth = evaluate_basic_unary(grid, degree_term)
        engine = RobustEvaluator()
        with inject_faults(FaultInjector({site: 1})) as injector:
            values = engine.evaluate_unary_cl_term(grid, degree_term)
        assert values == truth
        assert injector.fired[site] == 1
        report = engine.last_report
        assert report.answered_by in ("foc1", "baseline")
        assert "main_algorithm" in report.failed_stages()
        assert report.stage("main_algorithm").error_type == "FaultInjectedError"

    def test_acceptance_faulted_cascade_is_exact(self, grid, degree_term):
        """Faults in the main algorithm (cover construction) *and* the FOC1
        engine (memo insert): the cascade still returns the exact
        baseline-verified answer, and the report names the failed stages."""
        truth = evaluate_basic_unary(grid, degree_term)
        engine = RobustEvaluator()
        faults = FaultInjector({"cover.construct": 1, "memo.insert": 1})
        with inject_faults(faults):
            values = engine.evaluate_unary_cl_term(grid, degree_term)
        assert values == truth
        report = engine.last_report
        assert report.answered_by == "baseline"
        assert report.failed_stages() == ["main_algorithm", "foc1"]
        assert "FaultInjectedError" in report.summary()

    def test_report_records_stage_order(self, grid, degree_term):
        engine = RobustEvaluator()
        engine.evaluate_unary_cl_term(grid, degree_term)
        assert tuple(s.stage for s in engine.last_report.stages) == STAGES


class TestBudgets:
    def test_kill_switch_acceptance(self):
        """Adversarial deep-counting query on a dense graph under a
        100 ms / 10k-step budget: raises within 2x the budget."""
        dense = complete_graph(14)
        phi = parse_formula("E(x, y) & E(y, z) & E(z, w)")
        budget = EvaluationBudget(deadline=0.1, max_steps=10_000)
        engine = RobustEvaluator(budget=budget)
        started = time.monotonic()
        with pytest.raises(BudgetExceededError) as info:
            engine.count(dense, phi, ["x", "y", "z", "w"])
        assert time.monotonic() - started < 0.2
        assert info.value.steps > 0
        # The report survives the failure and shows what was tried.
        report = engine.last_report
        assert not report.succeeded()
        assert set(report.failed_stages()) == {"foc1", "baseline"}

    def test_budget_exhaustion_beats_stage_errors(self):
        # When the pool is dry the cascade surfaces BudgetExceededError
        # (with overall stats), not whichever per-slice error came last.
        engine = RobustEvaluator(budget=EvaluationBudget(max_steps=50))
        with pytest.raises(BudgetExceededError) as info:
            engine.count(
                complete_graph(10), parse_formula("E(x, y) & E(y, z)"), ["x", "y", "z"]
            )
        assert info.value.site == "robust.cascade"

    def test_generous_budget_still_answers(self):
        engine = RobustEvaluator(budget=EvaluationBudget(deadline=60.0, max_steps=10**9))
        assert engine.count(path_graph(4), parse_formula("E(x, y)"), ["x", "y"]) == 6
        assert engine.last_report.steps > 0

    def test_stage_steps_charged_to_parent(self):
        budget = EvaluationBudget(max_steps=10**9)
        engine = RobustEvaluator(budget=budget)
        engine.count(path_graph(4), parse_formula("E(x, y)"), ["x", "y"])
        assert budget.steps == engine.last_report.stage("foc1").steps

    def test_plain_foc1_engine_respects_budget(self):
        from repro import Foc1Evaluator

        engine = Foc1Evaluator(budget=EvaluationBudget(max_steps=5_000))
        with pytest.raises(BudgetExceededError):
            engine.count(
                complete_graph(12),
                parse_formula("E(x, y) & E(y, z) & E(z, w)"),
                ["x", "y", "z", "w"],
            )

    def test_brute_force_engine_respects_budget(self):
        from repro import BruteForceEvaluator

        engine = BruteForceEvaluator(budget=EvaluationBudget(max_steps=5_000))
        with pytest.raises(BudgetExceededError):
            engine.count(
                complete_graph(12),
                parse_formula("E(x, y) & E(y, z) & E(z, w)"),
                ["x", "y", "z", "w"],
            )


class TestCircuitBreaker:
    def test_breaker_trips_and_skips_the_stage(self, grid, degree_term):
        truth = evaluate_basic_unary(grid, degree_term)
        engine = RobustEvaluator(breaker=CircuitBreaker(threshold=2))
        for _ in range(2):
            with inject_faults(FaultInjector({"cover.construct": 1})):
                assert engine.evaluate_unary_cl_term(grid, degree_term) == truth
            assert "main_algorithm" in engine.last_report.failed_stages()
        # Circuit open: the third call skips the stage outright — no
        # injector needed, no budget slice paid for the broken stage.
        assert engine.evaluate_unary_cl_term(grid, degree_term) == truth
        report = engine.last_report
        entry = report.stage("main_algorithm")
        assert entry.status == "skipped"
        assert "circuit open" in entry.detail
        assert report.answered_by == "foc1"

    def test_success_resets_the_failure_count(self, grid, degree_term):
        engine = RobustEvaluator(breaker=CircuitBreaker(threshold=2))
        with inject_faults(FaultInjector({"cover.construct": 1})):
            engine.evaluate_unary_cl_term(grid, degree_term)
        assert engine.breaker.failures("main_algorithm") == 1
        engine.evaluate_unary_cl_term(grid, degree_term)  # healthy run
        assert engine.breaker.failures("main_algorithm") == 0
        with inject_faults(FaultInjector({"cover.construct": 1})):
            engine.evaluate_unary_cl_term(grid, degree_term)
        # Non-consecutive failures never trip.
        assert engine.breaker.state("main_algorithm") == "closed"

    def test_trip_and_skip_metrics(self, grid, degree_term):
        from repro import obs

        registry = obs.MetricsRegistry()
        previous = obs.set_metrics(registry)
        try:
            engine = RobustEvaluator(breaker=CircuitBreaker(threshold=1))
            with inject_faults(FaultInjector({"cover.construct": 1})):
                engine.evaluate_unary_cl_term(grid, degree_term)
            engine.evaluate_unary_cl_term(grid, degree_term)
        finally:
            obs.set_metrics(previous)
        assert registry.counter("robust.breaker.trip") == 1
        assert registry.counter("robust.breaker.skipped") == 1

    def test_evaluators_can_share_one_breaker(self, grid, degree_term):
        breaker = CircuitBreaker(threshold=2)
        first = RobustEvaluator(breaker=breaker)
        second = RobustEvaluator(breaker=breaker)
        for engine in (first, second):
            with inject_faults(FaultInjector({"cover.construct": 1})):
                engine.evaluate_unary_cl_term(grid, degree_term)
        # Two failures across two evaluators pooled into one trip.
        assert breaker.is_open("main_algorithm")


class TestPartialThroughCascade:
    def test_retry_heals_inside_the_cascade(self, grid, degree_term):
        truth = evaluate_basic_unary(grid, degree_term)
        engine = RobustEvaluator(workers=2, retry=RetryPolicy(retries=2))
        with inject_faults(FaultInjector({"worker.task": 1})) as injector:
            values = engine.evaluate_unary_cl_term(grid, degree_term)
        assert values == truth
        assert injector.fired["worker.task"] == 1
        report = engine.last_report
        assert report.answered_by == "main_algorithm"
        assert report.failed_stages() == []
        assert not report.is_partial()

    def test_partial_result_surfaces_in_report(self, grid, degree_term):
        truth = evaluate_basic_unary(grid, degree_term)
        engine = RobustEvaluator(workers=2, on_shard_failure="salvage")
        with inject_faults(FaultInjector({"worker.task": 1})):
            result = engine.evaluate_unary_cl_term(grid, degree_term)
        assert isinstance(result, PartialResult)
        report = engine.last_report
        assert report.answered_by == "main_algorithm"
        assert report.is_partial()
        assert report.partial is result
        entry = report.stage("main_algorithm")
        assert entry.status == "partial"
        assert "coverage" in entry.detail
        assert "partial" in report.summary()
        # Covered values are exact — salvage drops, never approximates.
        assert result.value
        assert all(truth[k] == v for k, v in result.value.items())

    def test_partial_counts_as_success_for_the_breaker(self, grid, degree_term):
        engine = RobustEvaluator(
            workers=2,
            on_shard_failure="salvage",
            breaker=CircuitBreaker(threshold=1),
        )
        with inject_faults(FaultInjector({"worker.task": 1})):
            engine.evaluate_unary_cl_term(grid, degree_term)
        # A salvaged partial answer is a degraded success, not a failure.
        assert engine.breaker.state("main_algorithm") == "closed"

    def test_rejects_unknown_failure_mode(self):
        with pytest.raises(ValueError, match="on_shard_failure"):
            RobustEvaluator(on_shard_failure="ignore")


class TestReportPlumbing:
    def test_stage_lookup_raises_on_unknown_name(self):
        report = RobustReport(operation="op", stages=[StageReport("foc1", "ok")])
        with pytest.raises(KeyError):
            report.stage("nope")

    def test_summaries_are_one_liners(self):
        ok = StageReport("foc1", "ok", elapsed=0.5, steps=12)
        failed = StageReport("main_algorithm", "failed", error_type="X", error="boom")
        skipped = StageReport("baseline", "skipped", detail="not needed")
        for entry in (ok, failed, skipped):
            assert "\n" not in entry.summary()
        report = RobustReport("count", "foc1", [ok, failed, skipped])
        assert "answered by foc1" in report.summary()

    def test_programming_errors_propagate(self, monkeypatch):
        # Only the library's typed errors trigger fallback; genuine bugs
        # (TypeError &c.) must surface immediately, not be papered over.
        class Exploding:
            def __init__(self, **kwargs):
                pass

            def model_check(self, structure, sentence):
                raise TypeError("genuine bug")

        monkeypatch.setattr("repro.robust.guard.Foc1Evaluator", Exploding)
        engine = RobustEvaluator()
        with pytest.raises(TypeError, match="genuine bug"):
            engine.model_check(path_graph(3), parse_formula("exists x. E(x, x)"))
