"""Differential tests for preemptible evaluation (suspend/resume).

The correctness bar (docs/ROBUSTNESS.md): suspending at every budget
quantum and resuming from the checkpoint must produce **exactly** the
answer of an uninterrupted run — across seeded random structures and the
serial, thread and process backends.  Restored state (materialised
strata, memo contents, completed shards) may only ever *skip* work, never
change a value.

Each round of the driver persists the checkpoint to disk and reloads it,
so the differential suite also exercises the save/load path end to end.
"""

import random

import pytest

from repro.errors import SuspendedError
from repro.logic.parser import parse_formula, parse_term
from repro.parallel import WorkerPool
from repro.robust import EvaluationBudget, FaultInjector, inject_faults
from repro.robust.checkpoint import (
    Checkpoint,
    CheckpointSession,
    checkpoint_session,
    load_checkpoint,
    save_checkpoint,
)
from repro.robust.guard import RobustEvaluator
from repro.core.evaluator import Foc1Evaluator
from repro.structures.builders import graph_structure

SEEDS = range(30)


def _random_graph(rng: random.Random, max_n: int = 10):
    n = rng.randint(3, max_n)
    vertices = list(range(1, n + 1))
    pairs = [(u, v) for u in vertices for v in vertices if u < v]
    edges = [pair for pair in pairs if rng.random() < 0.35]
    return graph_structure(vertices, edges)


def run_preempted(
    make_engine,
    call,
    tmp_path,
    quantum: int = 25,
    max_rounds: int = 80,
):
    """Drive ``call`` to completion, suspending at every budget quantum.

    Each suspension snapshots the session, persists the checkpoint to
    disk, reloads it, and resumes in a fresh session.  The quantum
    doubles whenever a round makes no recordable progress (some work —
    e.g. a single huge memo entry — is atomic at checkpoint granularity),
    so the loop always terminates; ``max_rounds`` is the backstop.
    Returns ``(result, suspensions)``.
    """
    target = str(tmp_path / "preempt.ckpt")
    session = CheckpointSession(operation="test", query_key="test")
    suspensions = 0
    last_progress = None
    for _ in range(max_rounds):
        budget = EvaluationBudget(max_steps=quantum, preemptible=True)
        engine = make_engine(budget)
        try:
            with checkpoint_session(session):
                return call(engine), suspensions
        except SuspendedError:
            suspensions += 1
            checkpoint = session.snapshot(budget.steps)
        save_checkpoint(checkpoint, target)
        checkpoint = load_checkpoint(target)
        progress = (
            checkpoint.steps_spent,
            sum(len(r.strata) for r in checkpoint.exec_state.values()),
            sum(len(r.memo) for r in checkpoint.exec_state.values()),
            sum(len(s) for s in checkpoint.shards.values()),
        )
        if progress[1:] == (last_progress or (None,))[1:]:
            quantum *= 2
        last_progress = progress
        session = CheckpointSession(resume=checkpoint)
    raise AssertionError(f"no convergence after {max_rounds} rounds")


def _operation_for(seed: int):
    """Rotate the evaluated operation across the seed range."""
    which = seed % 3
    if which == 0:
        formula = parse_formula("E(x, y) & E(y, z)")
        return lambda e, s: e.count(s, formula, ["x", "y", "z"])
    if which == 1:
        sentence = parse_formula("forall x. @geq1(#(y). E(x, y))")
        return lambda e, s: e.model_check(s, sentence)
    term = parse_term("#(y). E(x, y)")
    return lambda e, s: list(e.unary_term_values(s, term, "x").items())


class TestSerialPreemptionDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_resumed_equals_uninterrupted(self, seed, tmp_path):
        rng = random.Random(4000 + seed)
        structure = _random_graph(rng)
        op = _operation_for(seed)
        expected = op(Foc1Evaluator(), structure)
        actual, _ = run_preempted(
            lambda budget: Foc1Evaluator(budget=budget),
            lambda engine: op(engine, structure),
            tmp_path,
        )
        assert actual == expected

    def test_suspensions_actually_happen(self, tmp_path):
        # The differential above is vacuous if nothing ever suspends;
        # pin a workload big enough to guarantee several quanta.
        structure = _random_graph(random.Random(99), max_n=12)
        formula = parse_formula("E(x, y) & E(y, z)")
        expected = Foc1Evaluator().count(structure, formula, ["x", "y", "z"])
        actual, suspensions = run_preempted(
            lambda budget: Foc1Evaluator(budget=budget),
            lambda engine: engine.count(structure, formula, ["x", "y", "z"]),
            tmp_path,
            quantum=20,
        )
        assert actual == expected
        assert suspensions >= 3

    def test_ground_term_round_trips(self, tmp_path):
        structure = _random_graph(random.Random(7), max_n=9)
        term = parse_term("#(x, y). E(x, y)")
        expected = Foc1Evaluator().ground_term_value(structure, term)
        actual, _ = run_preempted(
            lambda budget: Foc1Evaluator(budget=budget),
            lambda engine: engine.ground_term_value(structure, term),
            tmp_path,
        )
        assert actual == expected


class TestThreadBackendPreemptionDifferential:
    @pytest.mark.parametrize("seed", (0, 3, 11, 19, 26))
    def test_unary_values_identical(self, seed, tmp_path):
        rng = random.Random(5000 + seed)
        structure = _random_graph(rng, max_n=12)
        term = parse_term("#(y). E(x, y)")
        expected = list(
            Foc1Evaluator().unary_term_values(structure, term, "x").items()
        )
        actual, _ = run_preempted(
            lambda budget: Foc1Evaluator(
                budget=budget, workers=3, parallel_backend="thread"
            ),
            lambda engine: list(
                engine.unary_term_values(structure, term, "x").items()
            ),
            tmp_path,
        )
        assert actual == expected


class TestProcessBackendPreemptionDifferential:
    @pytest.mark.parametrize("seed", (2, 13))
    def test_count_many_identical(self, seed, tmp_path):
        rng = random.Random(6000 + seed)
        structures = [_random_graph(rng, max_n=8) for _ in range(3)]
        formula = parse_formula("E(x, y) & E(y, z)")
        expected = Foc1Evaluator().count_many(structures, formula, ["x", "y", "z"])
        actual, _ = run_preempted(
            lambda budget: Foc1Evaluator(
                budget=budget, workers=2, parallel_backend="process"
            ),
            lambda engine: engine.count_many(structures, formula, ["x", "y", "z"]),
            tmp_path,
            quantum=60,
            max_rounds=30,
        )
        assert actual == expected


class TestPoolShardResume:
    """Completed shards restored from a checkpoint are never re-executed."""

    def test_resumed_shards_skip_execution(self):
        recording = CheckpointSession(operation="pool", query_key="k")
        pool = WorkerPool(workers=1)
        calls = []

        def make_task(i):
            def task(budget):
                calls.append(i)
                return i * 10

            return task

        tasks = [make_task(i) for i in range(3)]
        with checkpoint_session(recording):
            first = pool.run_tasks(tasks)
        assert first == [0, 10, 20]
        assert calls == [0, 1, 2]

        calls.clear()
        resumed = CheckpointSession(resume=recording.snapshot())
        with checkpoint_session(resumed):
            second = pool.run_tasks(tasks)
        assert second == [0, 10, 20]
        assert calls == []  # every shard replayed from the checkpoint

    def test_partially_resumed_fanout_runs_only_the_gap(self):
        session = CheckpointSession(operation="pool", query_key="k")
        scope = session.next_shard_scope(3)
        session.record_shard(scope, 0, 100)
        session.record_shard(scope, 2, 300)
        resumed = CheckpointSession(resume=session.snapshot())
        pool = WorkerPool(workers=2, backend="thread")
        calls = []

        def make_task(i):
            def task(budget):
                calls.append(i)
                return i * 10

            return task

        with checkpoint_session(resumed):
            results = pool.run_tasks([make_task(i) for i in range(3)])
        assert results == [100, 10, 300]
        assert calls == [1]

    def test_resumed_shards_bypass_fault_sites(self):
        # A fully resumed fan-out performs no shard work, so an armed
        # worker.task fault has nothing to fire on.
        recording = CheckpointSession(operation="pool", query_key="k")
        pool = WorkerPool(workers=1)
        tasks = [lambda budget: 1, lambda budget: 2]
        with checkpoint_session(recording):
            pool.run_tasks(tasks)
        resumed = CheckpointSession(resume=recording.snapshot())
        injector = FaultInjector({"worker.task": 1})
        with inject_faults(injector):
            with checkpoint_session(resumed):
                results = pool.run_tasks(tasks)
        assert results == [1, 2]
        assert injector.total_fired() == 0

    def test_resumed_shards_are_not_recharged(self):
        # Steps the recording run already charged must not be re-billed.
        recording = CheckpointSession(operation="pool", query_key="k")
        pool = WorkerPool(workers=1)

        def spend(budget):
            budget.tick(weight=5)
            return "done"

        first_budget = EvaluationBudget(max_steps=1000, preemptible=True)
        with checkpoint_session(recording):
            pool.run_tasks([spend, spend], budget=first_budget)
        assert first_budget.steps == 10

        resumed = CheckpointSession(resume=recording.snapshot())
        second_budget = EvaluationBudget(max_steps=1000, preemptible=True)
        with checkpoint_session(resumed):
            pool.run_tasks([spend, spend], budget=second_budget)
        assert second_budget.steps == 0


class TestCascadeSuspension:
    """Suspension is a quantum boundary, not a stage failure."""

    @staticmethod
    def _graph():
        return graph_structure([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4), (4, 1)])

    def test_suspension_does_not_trip_breaker(self):
        structure = self._graph()
        formula = parse_formula("E(x, y) & E(y, z)")
        budget = EvaluationBudget(max_steps=10, preemptible=True)
        engine = RobustEvaluator(budget=budget)
        session = CheckpointSession(operation="count", query_key="k")
        with checkpoint_session(session):
            with pytest.raises(SuspendedError):
                engine.count(structure, formula, ["x", "y", "z"])
        assert engine.breaker.state("foc1") == "closed"
        assert engine.breaker.failures("foc1") == 0
        report = engine.last_report
        assert report is not None
        entry = report.stage("foc1")
        assert entry.status == "suspended"
        assert "suspended" in entry.detail
        # The session remembers which stage to re-enter.
        assert session.stage == "foc1"

    def test_resume_skips_stages_decided_before_suspension(self):
        structure = self._graph()
        formula = parse_formula("E(x, y)")
        resume = Checkpoint(query_key="k", operation="count", stage="baseline")
        session = CheckpointSession(resume=resume)
        engine = RobustEvaluator()
        with checkpoint_session(session):
            result = engine.count(structure, formula, ["x", "y"])
        assert result == 8
        report = engine.last_report
        assert report.answered_by == "baseline"
        foc1 = report.stage("foc1")
        assert foc1.status == "skipped"
        assert "resumed" in foc1.detail

    def test_suspend_then_resume_cascade_end_to_end(self):
        structure = self._graph()
        formula = parse_formula("E(x, y) & E(y, z)")
        expected = RobustEvaluator().count(structure, formula, ["x", "y", "z"])

        session = CheckpointSession(operation="count", query_key="k")
        quantum = 10
        for _ in range(60):
            budget = EvaluationBudget(max_steps=quantum, preemptible=True)
            engine = RobustEvaluator(budget=budget)
            try:
                with checkpoint_session(session):
                    actual = engine.count(structure, formula, ["x", "y", "z"])
                break
            except SuspendedError:
                session = CheckpointSession(resume=session.snapshot(budget.steps))
                quantum *= 2
        else:
            raise AssertionError("cascade never completed")
        assert actual == expected


class TestPreemptibleBudget:
    def test_preemptible_budget_raises_suspended_with_fields(self):
        budget = EvaluationBudget(max_steps=3, preemptible=True, stage="foc1")
        with pytest.raises(SuspendedError) as info:
            for _ in range(10):
                budget.tick(site="test.loop")
        error = info.value
        assert error.reason == "steps"
        assert error.stage == "foc1"
        assert error.steps_spent == error.steps == 4
        assert error.max_steps == 3
        assert error.checkpoint is None  # attached later by the CLI layer

    def test_fatal_budget_error_carries_progress_fields(self):
        from repro.errors import BudgetExceededError

        budget = EvaluationBudget(max_steps=2, deadline=60.0, stage="baseline")
        with pytest.raises(BudgetExceededError) as info:
            for _ in range(5):
                budget.tick()
        error = info.value
        assert error.steps_spent == 3
        assert error.stage == "baseline"
        assert error.deadline_remaining is not None
        assert error.deadline_remaining > 0

    def test_slice_and_split_inherit_preemption(self):
        budget = EvaluationBudget(
            max_steps=100, preemptible=True, stage="foc1"
        )
        child = budget.slice(0.5)
        assert child.preemptible and child.stage == "foc1"
        for shard in budget.split(4):
            assert shard.preemptible and shard.stage == "foc1"

    def test_charge_never_raises_when_preemptible(self):
        budget = EvaluationBudget(max_steps=5, preemptible=True)
        budget.charge(1000, site="parallel.join")  # must not raise
        assert budget.steps == 1000
        with pytest.raises(SuspendedError):
            budget.check(site="after.join")
