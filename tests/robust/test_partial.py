"""Unit tests for structured partial results (see docs/ROBUSTNESS.md)."""

import pytest

from repro.robust import PartialResult, ShardFailure
from repro.robust.partial import ON_SHARD_FAILURE_MODES, validate_failure_mode


class TestFailureMode:
    def test_modes(self):
        assert ON_SHARD_FAILURE_MODES == ("raise", "salvage")

    def test_validate_accepts_and_returns(self):
        assert validate_failure_mode("raise") == "raise"
        assert validate_failure_mode("salvage") == "salvage"

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="on_shard_failure"):
            validate_failure_mode("ignore")


class TestShardFailure:
    def test_summary_names_items_attempts_and_error(self):
        failure = ShardFailure(
            shard=2,
            items=(4, 5),
            error_type="FaultInjectedError",
            error="injected fault",
            attempts=3,
        )
        text = failure.summary()
        assert "shard 2" in text
        assert "2 item(s)" in text
        assert "3 attempt(s)" in text
        assert "FaultInjectedError" in text


class TestPartialResult:
    def _partial(self):
        return PartialResult(
            operation="unary_term_values",
            value={1: 0, 2: 1},
            failures=[
                ShardFailure(
                    shard=1, items=(3, 4), error_type="ReproError", error="x"
                )
            ],
            expected=4,
            covered=2,
        )

    def test_coverage_fraction(self):
        assert self._partial().coverage == pytest.approx(0.5)

    def test_empty_expected_counts_as_full_coverage(self):
        assert PartialResult("op", value={}).coverage == 1.0

    def test_complete(self):
        assert not self._partial().complete()
        assert PartialResult("op", value={}, expected=0, covered=0).complete()

    def test_failed_items_in_shard_order(self):
        partial = self._partial()
        partial.failures.append(
            ShardFailure(shard=3, items=(9,), error_type="E", error="y")
        )
        assert partial.failed_items() == [3, 4, 9]
        assert partial.failed_shards() == [1, 3]

    def test_summary_reports_coverage_and_losses(self):
        text = self._partial().summary()
        assert "50.0%" in text
        assert "(2/4)" in text
        assert "shard 1" in text
