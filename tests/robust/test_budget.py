"""Unit tests for :class:`repro.robust.budget.EvaluationBudget`."""

import time

import pytest

from repro.errors import BudgetExceededError, ReproError
from repro.robust import EvaluationBudget


class TestConstruction:
    def test_defaults_are_unlimited(self):
        budget = EvaluationBudget()
        assert budget.remaining_seconds() is None
        assert budget.remaining_steps() is None
        assert not budget.expired()

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            EvaluationBudget(deadline=-1.0)

    def test_negative_max_steps_rejected(self):
        with pytest.raises(ValueError):
            EvaluationBudget(max_steps=-1)

    def test_bad_check_interval_rejected(self):
        with pytest.raises(ValueError):
            EvaluationBudget(check_interval=0)

    def test_repr_mentions_limits(self):
        budget = EvaluationBudget(deadline=1.0, max_steps=10)
        assert "max_steps=10" in repr(budget)


class TestStepLimit:
    def test_ticks_accumulate(self):
        budget = EvaluationBudget(max_steps=100)
        for _ in range(10):
            budget.tick("test")
        assert budget.steps == 10
        assert budget.remaining_steps() == 90

    def test_exhaustion_raises_typed_error(self):
        budget = EvaluationBudget(max_steps=5)
        for _ in range(5):
            budget.tick("test")
        with pytest.raises(BudgetExceededError):
            budget.tick("test")

    def test_error_is_a_repro_error(self):
        assert issubclass(BudgetExceededError, ReproError)

    def test_error_carries_partial_progress(self):
        budget = EvaluationBudget(max_steps=3)
        with pytest.raises(BudgetExceededError) as info:
            for _ in range(10):
                budget.tick("hot.loop")
        error = info.value
        assert error.reason == "steps"
        assert error.site == "hot.loop"
        assert error.steps == 4
        assert error.max_steps == 3
        assert error.elapsed >= 0.0
        assert "hot.loop" in str(error)

    def test_weighted_ticks(self):
        budget = EvaluationBudget(max_steps=10)
        budget.tick("bulk", weight=7)
        assert budget.steps == 7
        with pytest.raises(BudgetExceededError):
            budget.tick("bulk", weight=7)

    def test_zero_step_budget_fires_on_first_tick(self):
        budget = EvaluationBudget(max_steps=0)
        with pytest.raises(BudgetExceededError):
            budget.tick()


class TestDeadline:
    def test_expired_deadline_raises_on_tick(self):
        budget = EvaluationBudget(deadline=0.0, check_interval=1)
        time.sleep(0.002)
        with pytest.raises(BudgetExceededError) as info:
            budget.tick("slow.site")
        assert info.value.reason == "deadline"
        assert info.value.site == "slow.site"

    def test_wall_clock_checked_only_every_interval(self):
        budget = EvaluationBudget(deadline=0.0, check_interval=4)
        time.sleep(0.002)
        for _ in range(3):
            budget.tick()  # countdown not yet exhausted: no clock check
        with pytest.raises(BudgetExceededError):
            budget.tick()

    def test_generous_deadline_does_not_fire(self):
        budget = EvaluationBudget(deadline=60.0, check_interval=1)
        for _ in range(100):
            budget.tick()
        assert budget.remaining_seconds() > 0

    def test_expired_and_check(self):
        budget = EvaluationBudget(deadline=0.0)
        time.sleep(0.002)
        assert budget.expired()
        with pytest.raises(BudgetExceededError):
            budget.check("checkpoint")

    def test_remaining_seconds_never_negative(self):
        budget = EvaluationBudget(deadline=0.0)
        time.sleep(0.002)
        assert budget.remaining_seconds() == 0.0


class _FakeTime:
    """A controllable stand-in for the ``time`` module inside budget.py."""

    def __init__(self):
        self.now = 1000.0

    def monotonic(self):
        return self.now


class TestAdaptiveCheckInterval:
    """ISSUE 9 bugfix: slow-tick workloads must not overshoot the deadline
    by a whole 64-tick stride of expensive iterations."""

    def _slow_tick_run(self, monkeypatch, per_tick):
        clock = _FakeTime()
        monkeypatch.setattr("repro.robust.budget.time", clock)
        budget = EvaluationBudget(deadline=1.0)
        ticks = 0
        with pytest.raises(BudgetExceededError) as info:
            while True:
                clock.now += per_tick
                budget.tick("slow.site")
                ticks += 1
        assert info.value.reason == "deadline"
        return budget, ticks, clock

    def test_slow_ticks_shrink_the_interval(self, monkeypatch):
        # 2ms per tick against a 1s deadline: the first 64-tick stride
        # alone burns 12.8% of the deadline, so the interval must halve
        # and keep halving as the deadline approaches.
        budget, ticks, clock = self._slow_tick_run(monkeypatch, 0.002)
        # The stride converges all the way to checking every tick.
        assert budget._check_interval == 1
        # A fixed 64-stride only looks at the clock on tick multiples of
        # 64 and would run through tick 512 (1.024s elapsed); adapting
        # must stop earlier than that full-stride overshoot.
        assert ticks < 512
        overshoot = clock.now - 1000.0 - 1.0
        assert overshoot < 64 * 0.002

    def test_fast_ticks_keep_the_wide_interval(self, monkeypatch):
        # 1us per tick: no 64-tick stride ever burns 10% of the deadline,
        # so the cheap wide stride survives the whole run.
        clock = _FakeTime()
        monkeypatch.setattr("repro.robust.budget.time", clock)
        budget = EvaluationBudget(deadline=1.0)
        for _ in range(10_000):
            clock.now += 1e-6
            budget.tick()
        assert budget._check_interval == 64

    def test_catastrophic_ticks_exhaust_at_the_first_check(self, monkeypatch):
        # Half the deadline per tick: the very first wall-clock check both
        # halves the stride and raises — overshoot is bounded by the
        # initial 64-tick stride, never by a widened one.
        budget, ticks, _ = self._slow_tick_run(monkeypatch, 0.5)
        assert ticks + 1 == 64
        assert budget._check_interval == 32

    def test_no_deadline_never_adapts(self):
        budget = EvaluationBudget(max_steps=10_000)
        for _ in range(1_000):
            budget.tick()
        assert budget._check_interval == 64


class TestSlicing:
    def test_slice_fraction_of_remaining_steps(self):
        budget = EvaluationBudget(max_steps=100)
        budget.tick(weight=20)
        child = budget.slice(0.5)
        assert child.max_steps == 40
        assert child.steps == 0

    def test_slice_of_unlimited_budget_is_unlimited(self):
        child = EvaluationBudget().slice(0.25)
        assert child.max_steps is None
        assert child.remaining_seconds() is None

    def test_slice_gets_at_least_one_step(self):
        budget = EvaluationBudget(max_steps=2)
        child = budget.slice(0.1)
        assert child.max_steps == 1

    def test_bad_fraction_rejected(self):
        budget = EvaluationBudget(max_steps=10)
        for fraction in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                budget.slice(fraction)

    def test_child_deadline_cannot_outlive_parent(self):
        parent = EvaluationBudget(deadline=0.0, check_interval=1)
        time.sleep(0.002)
        child = parent.slice(1.0)
        with pytest.raises(BudgetExceededError):
            child.tick()

    def test_charge_accounts_child_work(self):
        budget = EvaluationBudget(max_steps=100)
        child = budget.slice(0.5)
        for _ in range(30):
            child.tick()
        budget.charge(child.steps, site="robust.stage")
        assert budget.steps == 30

    def test_charge_can_exhaust(self):
        budget = EvaluationBudget(max_steps=10)
        with pytest.raises(BudgetExceededError) as info:
            budget.charge(11, site="robust.stage")
        assert info.value.site == "robust.stage"

    def test_shared_budget_pools_work(self):
        # Two engines drawing from one pool exhaust it together.
        budget = EvaluationBudget(max_steps=10)
        for _ in range(6):
            budget.tick("engine.a")
        with pytest.raises(BudgetExceededError):
            for _ in range(6):
                budget.tick("engine.b")
