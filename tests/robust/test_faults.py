"""Unit tests for the deterministic fault-injection registry."""

import pytest

from repro.errors import FaultInjectedError, ReproError
from repro.robust import (
    FAULT_SITES,
    PARALLEL_FAULT_SITES,
    FaultInjector,
    inject_faults,
)
from repro.robust.faults import active_injector, fault_check


class TestRegistry:
    def test_registered_sites(self):
        assert FAULT_SITES == (
            "cover.construct",
            "removal.surgery",
            "memo.insert",
            "predicate.oracle",
            "worker.task",
            "worker.join",
            "shard.result",
            "checkpoint.save",
            "checkpoint.restore",
        )

    def test_parallel_sites_are_registered(self):
        assert PARALLEL_FAULT_SITES == (
            "worker.task",
            "worker.join",
            "shard.result",
        )
        assert set(PARALLEL_FAULT_SITES) <= set(FAULT_SITES)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector({"no.such.site": 1})

    def test_unknown_rate_site_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=0.5, rate_sites=("no.such.site",))

    def test_zero_based_hit_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector({"memo.insert": 0})

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)

    def test_check_of_unregistered_site_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.check("no.such.site")


class TestDeterministicFaults:
    def test_fires_exactly_at_armed_hit(self):
        injector = FaultInjector({"memo.insert": 3})
        injector.check("memo.insert")
        injector.check("memo.insert")
        with pytest.raises(FaultInjectedError) as info:
            injector.check("memo.insert")
        assert info.value.site == "memo.insert"
        assert info.value.hit == 3
        assert issubclass(FaultInjectedError, ReproError)

    def test_fires_only_once(self):
        # A fallback stage re-running the same machinery is not re-broken.
        injector = FaultInjector({"memo.insert": 1})
        with pytest.raises(FaultInjectedError):
            injector.check("memo.insert")
        for _ in range(10):
            injector.check("memo.insert")
        assert injector.fired["memo.insert"] == 1
        assert injector.hits["memo.insert"] == 11

    def test_sites_are_independent(self):
        injector = FaultInjector({"cover.construct": 1})
        injector.check("memo.insert")
        injector.check("removal.surgery")
        with pytest.raises(FaultInjectedError):
            injector.check("cover.construct")


class TestSeededRate:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            injector = FaultInjector(seed=seed, rate=0.3)
            fired = []
            for index in range(50):
                try:
                    injector.check("memo.insert")
                except FaultInjectedError:
                    fired.append(index)
            return fired

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_limit_caps_rate_faults(self):
        injector = FaultInjector(seed=1, rate=1.0, limit=2)
        fired = 0
        for _ in range(10):
            try:
                injector.check("memo.insert")
            except FaultInjectedError:
                fired += 1
        assert fired == 2
        assert injector.total_fired() == 2

    def test_rate_sites_restrict_firing(self):
        injector = FaultInjector(seed=1, rate=1.0, rate_sites=("cover.construct",))
        injector.check("memo.insert")  # not a rate site: must pass
        with pytest.raises(FaultInjectedError):
            injector.check("cover.construct")


class TestConcurrency:
    def test_hit_counters_are_exact_under_contention(self):
        # 8 threads × 500 checks of a never-firing site: the lock-protected
        # counter must see every one (no lost updates).
        import threading

        injector = FaultInjector()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(500):
                injector.check("memo.insert")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert injector.hits["memo.insert"] == 8 * 500

    def test_rate_draws_depend_only_on_seed_site_and_hit(self):
        # The rate draw for hit n of a site is a pure function of
        # (seed, site, n) — interleaving checks of *other* sites between
        # them cannot shift the schedule (no shared RNG stream).
        injector_a = FaultInjector(seed=5, rate=0.4, rate_sites=("memo.insert",))
        injector_b = FaultInjector(seed=5, rate=0.4, rate_sites=("memo.insert",))
        schedule_a, schedule_b = [], []
        for n in range(1, 40):
            try:
                injector_a.check("memo.insert")
            except FaultInjectedError:
                schedule_a.append(n)
            injector_b.check("cover.construct")  # interleaved, never fires
            try:
                injector_b.check("memo.insert")
            except FaultInjectedError:
                schedule_b.append(n)
        assert schedule_a == schedule_b
        assert schedule_a  # 0.4 over 39 hits: the schedule is non-empty


class TestGlobalInstallation:
    def test_fault_check_is_noop_without_injector(self):
        assert active_injector() is None
        fault_check("memo.insert")  # must not raise

    def test_context_manager_installs_and_removes(self):
        injector = FaultInjector({"memo.insert": 1})
        with inject_faults(injector) as installed:
            assert installed is injector
            assert active_injector() is injector
            with pytest.raises(FaultInjectedError):
                fault_check("memo.insert")
        assert active_injector() is None

    def test_removed_even_when_body_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            with inject_faults(FaultInjector()):
                raise RuntimeError("boom")
        assert active_injector() is None

    def test_nesting_rejected(self):
        with inject_faults(FaultInjector()):
            with pytest.raises(RuntimeError):
                with inject_faults(FaultInjector()):
                    pass
        assert active_injector() is None
