"""The optional approx stage of the robust cascade (ISSUE 9).

The sampling tier joins the cascade only on request (``approx=True``)
and only for counting operations; it runs last in the fixed order, may
lead under ``route="auto"`` only when every exact stage is predicted to
blow the budget, and its answers are :class:`ApproxResult` values with
the report flagged ``approximate`` — an estimate can never impersonate
an exact count.
"""

import pytest

from repro.approx import ApproxResult
from repro.logic.parser import parse_formula, parse_term
from repro.robust import EvaluationBudget
from repro.robust.guard import RobustEvaluator
from repro.sparse.classes import dense_random_graph
from repro.structures.builders import path_graph

PHI = "E(x, y) & E(y, z)"
VARIABLES = ["x", "y", "z"]


def _dense():
    return dense_random_graph(40, probability=0.5, seed=3)


class TestCascadeShape:
    def test_default_cascade_has_no_approx_stage(self):
        engine = RobustEvaluator()
        count = engine.count(path_graph(6), parse_formula(PHI), VARIABLES)
        assert isinstance(count, int)
        report = engine.last_report
        assert [s.stage for s in report.stages] == [
            "main_algorithm",
            "foc1",
            "baseline",
        ]
        assert report.approximate is False
        assert report.to_dict()["approximate"] is False

    def test_approx_joins_last_for_counting(self):
        engine = RobustEvaluator(approx=True)
        count = engine.count(path_graph(6), parse_formula(PHI), VARIABLES)
        # Plenty of budget: an exact stage answers and the sampler never
        # runs, so the answer stays a plain int.
        assert isinstance(count, int)
        report = engine.last_report
        assert [s.stage for s in report.stages][-1] == "approx"
        assert len(report.stages) == 4
        assert report.approximate is False

    def test_model_check_never_gets_an_approx_stage(self):
        engine = RobustEvaluator(approx=True)
        engine.model_check(path_graph(6), parse_formula("exists x. E(x, x)"))
        assert "approx" not in [s.stage for s in engine.last_report.stages]

    def test_non_count_term_marks_approx_skipped(self):
        engine = RobustEvaluator(approx=True)
        engine.ground_term_value(path_graph(6), parse_term("3"))
        report = engine.last_report
        [approx_stage] = [s for s in report.stages if s.stage == "approx"]
        assert approx_stage.status == "skipped"
        assert "counting terms" in approx_stage.detail


class TestApproxAnswers:
    def test_sampler_salvages_a_budget_too_small_for_exact(self):
        # 50k steps: every exact stage exhausts its slice on this dense
        # input (baseline alone needs 40^3 = 64k assignments), and the
        # pilot-refined sampling plan fits.
        engine = RobustEvaluator(
            budget=EvaluationBudget(max_steps=50_000),
            approx=True,
            approx_seed=7,
        )
        result = engine.count(_dense(), parse_formula(PHI), VARIABLES)
        assert isinstance(result, ApproxResult)
        report = engine.last_report
        assert report.answered_by == "approx"
        assert report.approximate is True
        assert report.to_dict()["approximate"] is True
        exact_statuses = {
            s.stage: s.status for s in report.stages if s.stage != "approx"
        }
        assert all(v != "ok" for v in exact_statuses.values())

    def test_cascade_answer_is_seed_deterministic(self):
        values = []
        for _ in range(2):
            engine = RobustEvaluator(
                budget=EvaluationBudget(max_steps=50_000),
                approx=True,
                approx_seed=7,
            )
            result = engine.count(_dense(), parse_formula(PHI), VARIABLES)
            values.append((result.value, result.samples, result.hits))
        assert values[0] == values[1]

    def test_estimate_lands_near_the_exact_count(self):
        engine = RobustEvaluator(
            budget=EvaluationBudget(max_steps=50_000),
            approx=True,
            approx_seed=7,
        )
        result = engine.count(_dense(), parse_formula(PHI), VARIABLES)
        exact = RobustEvaluator().count(_dense(), parse_formula(PHI), VARIABLES)
        assert result.relative_error_vs(exact) <= result.epsilon

    def test_ground_count_term_can_be_sampled(self):
        engine = RobustEvaluator(
            budget=EvaluationBudget(max_steps=50_000),
            approx=True,
            approx_seed=7,
        )
        term = parse_term(f"#({', '.join(VARIABLES)}). ({PHI})")
        result = engine.ground_term_value(_dense(), term)
        assert isinstance(result, ApproxResult)
        assert engine.last_report.approximate is True


class TestRoutingGate:
    def test_auto_withholds_approx_when_exact_is_affordable(self):
        # No deadline: the no-deadline affordability ceiling is generous,
        # so even with the sampler priced the router must not lead with
        # it; an exact stage answers and the decision says why.
        engine = RobustEvaluator(route="auto", approx=True)
        count = engine.count(_dense(), parse_formula(PHI), VARIABLES)
        assert isinstance(count, int)
        report = engine.last_report
        assert report.answered_by != "approx"
        assert report.approximate is False
        if (
            report.routing is not None
            and "approx withheld" in report.routing.reason
        ):
            assert report.routing.mode == "cascade"

    def test_epsilon_and_seed_are_forwarded(self):
        engine = RobustEvaluator(
            budget=EvaluationBudget(max_steps=50_000),
            approx=True,
            epsilon=0.2,
            delta=0.1,
            approx_seed=13,
        )
        result = engine.count(_dense(), parse_formula(PHI), VARIABLES)
        assert isinstance(result, ApproxResult)
        assert result.epsilon == 0.2
        assert result.delta == 0.1
        assert result.seed == 13
