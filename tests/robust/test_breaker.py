"""Unit tests for the cascade circuit breaker (see docs/ROBUSTNESS.md)."""

import threading

import pytest

from repro.robust import CircuitBreaker
from repro.robust.breaker import BreakerOpenError


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


class TestTripping:
    def test_closed_until_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.allow("main")
        assert breaker.record_failure("main") is False
        assert breaker.record_failure("main") is False
        assert breaker.allow("main")  # still closed at 2/3
        assert breaker.record_failure("main") is True  # trips now
        assert breaker.state("main") == "open"
        assert not breaker.allow("main")

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("main")
        breaker.record_success("main")
        breaker.record_failure("main")
        assert breaker.state("main") == "closed"
        assert breaker.failures("main") == 1

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("main")
        assert not breaker.allow("main")
        assert breaker.allow("foc1")

    def test_trip_reported_exactly_once(self):
        breaker = CircuitBreaker(threshold=1)
        assert breaker.record_failure("main") is True
        assert breaker.record_failure("main") is False  # already open

    def test_reset_closes_one_key_or_all(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("a")
        breaker.record_failure("b")
        breaker.reset("a")
        assert breaker.allow("a")
        assert not breaker.allow("b")
        breaker.reset()
        assert breaker.allow("b")

    def test_guard_raises_when_open(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.guard("main")  # closed: no-op
        breaker.record_failure("main")
        with pytest.raises(BreakerOpenError, match="main"):
            breaker.guard("main")


class TestHalfOpen:
    def test_without_cooldown_stays_open(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("main")
        assert breaker.state("main") == "open"
        assert not breaker.allow("main")

    def test_cooldown_allows_exactly_one_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.0)
        breaker.record_failure("main")
        assert breaker.state("main") == "half_open"
        assert breaker.allow("main")  # the probe
        assert not breaker.allow("main")  # a second concurrent caller

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.0)
        breaker.record_failure("main")
        assert breaker.allow("main")
        breaker.record_success("main")
        assert breaker.state("main") == "closed"
        assert breaker.allow("main")

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1e9)
        breaker.record_failure("main")
        # Fake a probe outcome directly: a failed probe re-opens for a
        # fresh cooldown and does not count as a new trip.
        assert breaker.record_failure("main") is False
        assert breaker.state("main") == "open"


class TestThreadSafety:
    def test_concurrent_failures_trip_exactly_once(self):
        breaker = CircuitBreaker(threshold=10)
        trips = []
        barrier = threading.Barrier(10)

        def worker():
            barrier.wait()
            if breaker.record_failure("main"):
                trips.append(1)

        threads = [threading.Thread(target=worker) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trips) == 1
        assert not breaker.allow("main")
