"""Unit tests for the per-shard retry policy (see docs/ROBUSTNESS.md)."""

import pytest

from repro.errors import (
    BudgetExceededError,
    FaultInjectedError,
    ReproError,
    SuspendedError,
)
from repro.robust import RetryPolicy


class TestConstruction:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.retries == 2
        assert policy.base_delay == 0.0
        assert policy.no_retry == (BudgetExceededError, SuspendedError)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestShouldRetry:
    def test_retries_transient_library_errors(self):
        policy = RetryPolicy(retries=2)
        error = FaultInjectedError("worker.task", 1)
        assert policy.should_retry(error, 1)
        assert policy.should_retry(error, 2)
        assert not policy.should_retry(error, 3)

    def test_budget_exhaustion_never_retries(self):
        # A fresh identical slice would exhaust too; retrying would only
        # double-charge the parent.
        policy = RetryPolicy(retries=5)
        error = BudgetExceededError("dry", reason="steps", site="x", steps=1)
        assert not policy.should_retry(error, 1)

    def test_programming_errors_never_retry(self):
        policy = RetryPolicy(retries=5)
        assert not policy.should_retry(TypeError("bug"), 1)
        assert not policy.should_retry(KeyboardInterrupt(), 1)

    def test_zero_retries_disables_retrying(self):
        policy = RetryPolicy(retries=0)
        assert not policy.should_retry(ReproError("transient"), 1)

    def test_custom_retry_on(self):
        policy = RetryPolicy(retries=1, retry_on=(OSError,))
        assert policy.should_retry(OSError("flaky io"), 1)
        assert not policy.should_retry(ReproError("transient"), 1)


class TestBackoff:
    def test_zero_base_delay_means_immediate(self):
        policy = RetryPolicy(base_delay=0.0)
        assert policy.delay(0, 1) == 0.0
        assert policy.delay(3, 2) == 0.0

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            retries=5, base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0
        )
        assert policy.delay(0, 1) == pytest.approx(0.1)
        assert policy.delay(0, 2) == pytest.approx(0.2)
        assert policy.delay(0, 3) == pytest.approx(0.3)  # capped
        assert policy.delay(0, 4) == pytest.approx(0.3)

    def test_jitter_is_deterministic_per_shard_and_attempt(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=42)
        again = RetryPolicy(base_delay=0.1, jitter=0.5, seed=42)
        assert policy.delay(3, 1) == again.delay(3, 1)
        # Different shards (and attempts) decorrelate.
        assert policy.delay(3, 1) != policy.delay(4, 1)
        assert policy.delay(3, 1) != policy.delay(3, 2)

    def test_different_seeds_differ(self):
        a = RetryPolicy(base_delay=0.1, jitter=0.5, seed=1)
        b = RetryPolicy(base_delay=0.1, jitter=0.5, seed=2)
        assert a.delay(0, 1) != b.delay(0, 1)

    def test_jitter_never_exceeds_max_delay(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=1.0
        )
        for shard in range(20):
            assert policy.delay(shard, 1) <= 1.0

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0, 0)

    def test_pause_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(
            base_delay=0.25, jitter=0.0, sleep=slept.append
        )
        returned = policy.pause(0, 1)
        assert slept == [0.25]
        assert returned == pytest.approx(0.25)

    def test_pause_skips_sleep_for_zero_delay(self):
        slept = []
        policy = RetryPolicy(base_delay=0.0, sleep=slept.append)
        assert policy.pause(0, 1) == 0.0
        assert slept == []
