"""Unit tests for the checkpoint format, persistence and live session.

The persistence contract (docs/ROBUSTNESS.md): a checkpoint file is either
restored whole or rejected with a typed
:class:`~repro.errors.CheckpointError` — truncation, corruption, version
or magic mismatches never produce a silent partial restore — and a failed
save (crash mid-write, concurrent writer) leaves the previous checkpoint
at the target path intact and readable.
"""

import glob
import os
import pickle

import pytest

from repro.errors import CheckpointError, FaultInjectedError
from repro.robust import FaultInjector, inject_faults
from repro.robust.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointSession,
    ExecRecord,
    StratumRecord,
    active_checkpoint_session,
    checkpoint_session,
    fingerprint,
    load_checkpoint,
    save_checkpoint,
    structure_digest,
)
from repro.structures.builders import graph_structure


def sample_checkpoint(steps=42):
    return Checkpoint(
        query_key="deadbeef" * 8,
        operation="count",
        stage="foc1",
        exec_state={
            "digest-0": ExecRecord(
                strata={0: StratumRecord(0, "Paux__0", 1, ((1,), (2,)))},
                memo=[("holds", "E(x, y)", ("x",), True)],
            )
        },
        shards={0: {0: 5, 2: 7}},
        shard_counts={0: 3},
        steps_spent=steps,
        suspensions=1,
    )


class TestPersistenceRoundTrip:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "run.ckpt"
        original = sample_checkpoint()
        save_checkpoint(original, target)
        restored = load_checkpoint(target)
        assert restored == original
        assert restored.version == CHECKPOINT_VERSION
        assert restored.exec_state["digest-0"].strata[0].symbol == "Paux__0"
        assert restored.shards[0] == {0: 5, 2: 7}

    def test_save_leaves_no_droppings(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(), target)
        assert sorted(os.listdir(tmp_path)) == ["run.ckpt"]

    def test_overwrite_replaces_whole_checkpoint(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(steps=1), target)
        save_checkpoint(sample_checkpoint(steps=99), target)
        assert load_checkpoint(target).steps_spent == 99

    def test_summary_and_to_dict_report_counts(self):
        checkpoint = sample_checkpoint()
        summary = checkpoint.summary()
        assert "count" in summary and "stage foc1" in summary
        info = checkpoint.to_dict()
        assert info["strata"] == 1
        assert info["memo_entries"] == 1
        assert info["shard_results"] == 2
        assert info["steps_spent"] == 42
        assert info["version"] == CHECKPOINT_VERSION


class TestRejectedFiles:
    """Every corruption mode raises CheckpointError, never half-restores."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_not_a_checkpoint_file(self, tmp_path):
        target = tmp_path / "readme.txt"
        target.write_text("hello, this is not a checkpoint\n")
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_checkpoint(target)

    def test_bad_magic(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(), target)
        raw = target.read_bytes()
        target.write_bytes(b"xxxxx-ckpt" + raw[len(b"repro-ckpt") :])
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(target)

    def test_version_mismatch(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(), target)
        raw = target.read_bytes()
        bumped = raw.replace(
            f" v{CHECKPOINT_VERSION} ".encode(),
            f" v{CHECKPOINT_VERSION + 1} ".encode(),
            1,
        )
        target.write_bytes(bumped)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(target)

    def test_truncated_payload(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(), target)
        raw = target.read_bytes()
        target.write_bytes(raw[:-10])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(target)

    def test_padded_payload(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(), target)
        with open(target, "ab") as handle:
            handle.write(b"\x00" * 8)
        with pytest.raises(CheckpointError, match="truncated or padded"):
            load_checkpoint(target)

    def test_flipped_payload_byte_fails_integrity(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(), target)
        raw = bytearray(target.read_bytes())
        header_end = raw.index(b"\n") + 1
        raw[header_end + 5] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(target)

    def test_payload_of_wrong_type(self, tmp_path):
        import hashlib

        target = tmp_path / "run.ckpt"
        payload = pickle.dumps({"not": "a checkpoint"})
        digest = hashlib.sha256(payload).hexdigest()
        header = (
            f"repro-ckpt v{CHECKPOINT_VERSION} sha256={digest} "
            f"bytes={len(payload)}\n"
        ).encode("ascii")
        target.write_bytes(header + payload)
        with pytest.raises(CheckpointError, match="not a Checkpoint"):
            load_checkpoint(target)


class TestCrashConsistency:
    def test_concurrent_save_rejected_and_previous_intact(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(steps=1), target)
        lock = tmp_path / "run.ckpt.lock"
        lock.write_text("")  # another writer is mid-save
        with pytest.raises(CheckpointError, match="concurrent"):
            save_checkpoint(sample_checkpoint(steps=2), target)
        # The foreign lock is not ours to remove, and the previous
        # checkpoint is untouched.
        assert lock.exists()
        assert load_checkpoint(target).steps_spent == 1

    def test_crash_mid_save_keeps_previous_checkpoint(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(steps=1), target)
        injector = FaultInjector({"checkpoint.save": 1})
        with inject_faults(injector):
            with pytest.raises(FaultInjectedError):
                save_checkpoint(sample_checkpoint(steps=2), target)
        assert load_checkpoint(target).steps_spent == 1
        # The crashed save cleaned up: no temp file, no stale lock, so
        # the retry goes through.
        assert not glob.glob(str(target) + ".tmp.*")
        assert not (tmp_path / "run.ckpt.lock").exists()
        save_checkpoint(sample_checkpoint(steps=2), target)
        assert load_checkpoint(target).steps_spent == 2

    def test_crash_before_first_checkpoint_leaves_nothing(self, tmp_path):
        target = tmp_path / "run.ckpt"
        with inject_faults(FaultInjector({"checkpoint.save": 1})):
            with pytest.raises(FaultInjectedError):
                save_checkpoint(sample_checkpoint(), target)
        assert not target.exists()

    def test_restore_site_is_injectable(self, tmp_path):
        target = tmp_path / "run.ckpt"
        save_checkpoint(sample_checkpoint(), target)
        with inject_faults(FaultInjector({"checkpoint.restore": 1})):
            with pytest.raises(FaultInjectedError):
                load_checkpoint(target)
        # The file itself is fine; only the injected read failed.
        assert load_checkpoint(target).steps_spent == 42


class TestFingerprints:
    def test_structure_digest_is_extensional(self):
        a = graph_structure([1, 2, 3], [(1, 2), (2, 3)])
        b = graph_structure([1, 2, 3], [(2, 3), (1, 2)])
        c = graph_structure([1, 2, 3], [(1, 2)])
        assert structure_digest(a) == structure_digest(b)
        assert structure_digest(a) != structure_digest(c)

    def test_universe_order_matters(self):
        # Output ordering follows universe order, so it is part of the key.
        a = graph_structure([1, 2, 3], [(1, 2)])
        b = graph_structure([3, 2, 1], [(1, 2)])
        assert structure_digest(a) != structure_digest(b)

    def test_fingerprint_separates_operations_and_queries(self):
        s = graph_structure([1, 2], [(1, 2)])
        assert fingerprint("count", "E(x, y)", s) != fingerprint(
            "check", "E(x, y)", s
        )
        assert fingerprint("count", "E(x, y)", s) != fingerprint(
            "count", "E(y, x)", s
        )


class TestSessionRecording:
    def test_fresh_session_snapshot(self):
        session = CheckpointSession(operation="count", query_key="k")
        session.record_stratum("d", StratumRecord(0, "Paux__0", 1, ((1,),)))
        session.record_memo("d", [("holds", "E(x, y)", ("x",), True)])
        scope = session.next_shard_scope(3)
        session.record_shard(scope, 0, "r0")
        session.record_stage("foc1")
        checkpoint = session.snapshot(steps_this_run=10)
        assert checkpoint.steps_spent == 10
        assert checkpoint.suspensions == 1
        assert checkpoint.stage == "foc1"
        assert checkpoint.exec_state["d"].strata[0].tuples == ((1,),)
        assert checkpoint.shards == {0: {0: "r0"}}
        assert checkpoint.shard_counts == {0: 3}

    def test_resumed_session_accumulates_ledger(self):
        first = CheckpointSession(operation="count", query_key="k")
        checkpoint = first.snapshot(steps_this_run=10)
        second = CheckpointSession(resume=checkpoint)
        assert second.steps_base == 10
        assert second.operation == "count"
        assert second.query_key == "k"
        again = second.snapshot(steps_this_run=5)
        assert again.steps_spent == 15
        assert again.suspensions == 2

    def test_snapshot_is_isolated_from_later_recording(self):
        session = CheckpointSession(operation="count", query_key="k")
        scope = session.next_shard_scope(2)
        session.record_shard(scope, 0, "r0")
        checkpoint = session.snapshot()
        session.record_shard(scope, 1, "r1")
        session.record_stratum("d", StratumRecord(0, "P", 1, ()))
        assert checkpoint.shards == {0: {0: "r0"}}
        assert "d" not in checkpoint.exec_state

    def test_memo_snapshots_only_grow(self):
        # Memo exports are cumulative; a shorter (stale) export from an
        # earlier point in the run must not clobber a fuller one.
        session = CheckpointSession(operation="count", query_key="k")
        session.record_memo("d", [("a",), ("b",)])
        session.record_memo("d", [("a",)])
        assert session.resumed_memo("d") == [("a",), ("b",)]
        session.record_memo("d", [("a",), ("b",), ("c",)])
        assert len(session.resumed_memo("d")) == 3

    def test_shard_scopes_are_claimed_in_call_order(self):
        session = CheckpointSession(operation="count", query_key="k")
        assert session.next_shard_scope(2) == 0
        assert session.next_shard_scope(5) == 1
        assert session.next_shard_scope(1) == 2

    def test_resumed_shards_round_trip(self):
        first = CheckpointSession(operation="count", query_key="k")
        scope = first.next_shard_scope(3)
        first.record_shard(scope, 0, "r0")
        first.record_shard(scope, 2, "r2")
        second = CheckpointSession(resume=first.snapshot())
        resumed_scope = second.next_shard_scope(3)
        assert resumed_scope == 0
        assert second.resumed_shards(resumed_scope) == {0: "r0", 2: "r2"}

    def test_mismatched_fanout_drops_stale_results(self):
        # A resumed run that fans out a different task count cannot trust
        # the recorded per-index values.
        first = CheckpointSession(operation="count", query_key="k")
        scope = first.next_shard_scope(3)
        first.record_shard(scope, 0, "r0")
        second = CheckpointSession(resume=first.snapshot())
        resumed_scope = second.next_shard_scope(4)
        assert second.resumed_shards(resumed_scope) == {}

    def test_resume_stage_is_consumed_once(self):
        first = CheckpointSession(operation="count", query_key="k")
        first.record_stage("baseline")
        second = CheckpointSession(resume=first.snapshot())
        assert second.consume_resume_stage() == "baseline"
        assert second.consume_resume_stage() == ""

    def test_fresh_session_has_no_resume_stage(self):
        session = CheckpointSession(operation="count", query_key="k")
        assert session.consume_resume_stage() == ""


class TestActiveSession:
    def test_install_and_clear(self):
        session = CheckpointSession(operation="count", query_key="k")
        assert active_checkpoint_session() is None
        with checkpoint_session(session) as installed:
            assert installed is session
            assert active_checkpoint_session() is session
        assert active_checkpoint_session() is None

    def test_cleared_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with checkpoint_session(CheckpointSession()):
                raise RuntimeError("boom")
        assert active_checkpoint_session() is None

    def test_nesting_rejected(self):
        with checkpoint_session(CheckpointSession()):
            with pytest.raises(RuntimeError, match="already active"):
                with checkpoint_session(CheckpointSession()):
                    pass
        assert active_checkpoint_session() is None

    def test_owner_thread_scoping(self):
        import threading

        session = CheckpointSession()
        assert session.on_owner_thread()
        seen = []
        t = threading.Thread(target=lambda: seen.append(session.on_owner_thread()))
        t.start()
        t.join()
        assert seen == [False]

    def test_concurrent_sessions_are_thread_local(self):
        # The multi-tenant service runs one checkpoint session per
        # executor thread; installs must never bleed across threads or
        # into the coordinating thread (serve regression, ISSUE #10).
        import threading

        barrier = threading.Barrier(2)
        observed = {}

        def worker(name):
            session = CheckpointSession(operation="count", query_key=name)
            with checkpoint_session(session):
                barrier.wait()  # both sessions active simultaneously
                observed[name] = active_checkpoint_session() is session
                barrier.wait()
            observed[name + ".cleared"] = active_checkpoint_session() is None

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert observed == {
            "a": True,
            "b": True,
            "a.cleared": True,
            "b.cleared": True,
        }
        assert active_checkpoint_session() is None
