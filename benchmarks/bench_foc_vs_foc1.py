"""E4 — the price of unrestricted FOC(P).

Section 4 shows FOC({P=}) on trees is as hard as FO on arbitrary graphs.
Operationally: answering a graph query *through the tree encoding* (where
it needs the non-FOC1 formula psi_E) costs vastly more than answering the
same query on the graph directly with FO/FOC1 machinery.

Measured shape: for the same underlying question ("is there an edge /
triangle in G?"), direct evaluation on G stays microseconds while the
psi_E-encoded evaluation on T_G grows steeply with |G| — the evaluator
cannot exploit rule (4') materialisation for two-free-variable predicate
atoms and falls back to inline evaluation.
"""

import pytest

from repro.hardness.tree_reduction import reduce_instance
from repro.logic.parser import parse_formula
from repro.sparse.classes import sparse_random_graph

EDGE = parse_formula("exists x. exists y. (E(x, y) & !(x = y))")

SIZES = (3, 5, 7)


@pytest.mark.parametrize("n", SIZES)
def test_direct_fo_on_graph(benchmark, fast_engine, n):
    graph = sparse_random_graph(n, 1.5, seed=n)
    result = benchmark(fast_engine.model_check, graph, EDGE)
    benchmark.extra_info["graph_order"] = graph.order()
    benchmark.extra_info["result"] = result


@pytest.mark.parametrize("n", SIZES)
def test_encoded_foc_on_tree(benchmark, full_foc_engine, n):
    graph = sparse_random_graph(n, 1.5, seed=n)
    tree, phi_hat = reduce_instance(graph, EDGE)
    result = benchmark(full_foc_engine.model_check, tree, phi_hat)
    benchmark.extra_info["graph_order"] = graph.order()
    benchmark.extra_info["tree_order"] = tree.order()
    benchmark.extra_info["result"] = result


def test_direct_is_faster(fast_engine, full_foc_engine):
    import time

    graph = sparse_random_graph(6, 1.5, seed=99)
    tree, phi_hat = reduce_instance(graph, EDGE)

    start = time.perf_counter()
    direct = fast_engine.model_check(graph, EDGE)
    direct_seconds = time.perf_counter() - start

    start = time.perf_counter()
    encoded = full_foc_engine.model_check(tree, phi_hat)
    encoded_seconds = time.perf_counter() - start

    assert direct == encoded
    assert direct_seconds < encoded_seconds
