"""E8 — the Kuske–Schweikardt regime: bounded-degree classes.

The paper's starting point ([16]): FOC(P) evaluation is fixed-parameter
*linear* on bounded-degree classes.  Bounded degree means constant-size
balls, so ball-driven evaluation of unary counting terms costs O(1) per
element.

Measured shape: simultaneous unary evaluation (``t^A[a]`` for all a) on
degree-<=3 graphs scales linearly in n, and the per-element cost is flat
across n; the brute-force baseline is Theta(n^2) here.
"""

import pytest

from repro.core.clterms import BasicClTerm
from repro.core.local_eval import evaluate_basic_unary
from repro.logic.builder import Rel
from repro.logic.parser import parse_term
from repro.sparse.classes import bounded_degree_graph

E = Rel("E", 2)

SIZES = (100, 400, 1600)
UNARY_TERM = parse_term("#(y, z). (E(x, y) & E(y, z))")


@pytest.mark.parametrize("n", SIZES)
def test_engine_unary_values(benchmark, fast_engine, n):
    structure = bounded_degree_graph(n, 3, seed=n)
    values = benchmark(
        fast_engine.unary_term_values, structure, UNARY_TERM, "x"
    )
    benchmark.extra_info["order"] = n
    benchmark.extra_info["total"] = sum(values.values())


@pytest.mark.parametrize("n", (30, 60, 120))
def test_brute_force_unary_values(benchmark, brute_engine, n):
    structure = bounded_degree_graph(n, 3, seed=n)
    values = benchmark(
        brute_engine.unary_term_values, structure, UNARY_TERM, "x"
    )
    benchmark.extra_info["order"] = n
    benchmark.extra_info["total"] = sum(values.values())


@pytest.mark.parametrize("n", SIZES)
def test_basic_clterm_ball_exploration(benchmark, n):
    """The Remark 6.3 path directly: unary basic cl-term on bounded degree."""
    structure = bounded_degree_graph(n, 3, seed=n)
    term = BasicClTerm(
        variables=("y1", "y2", "y3"),
        psi=E("y1", "y2") & E("y2", "y3"),
        psi_radius=0,
        link_distance=1,
        edges=frozenset({(1, 2), (2, 3)}),
        unary=True,
    )
    values = benchmark(evaluate_basic_unary, structure, term)
    benchmark.extra_info["order"] = n
    benchmark.extra_info["total"] = sum(values.values())


def test_agreement(fast_engine, brute_engine):
    structure = bounded_degree_graph(60, 3, seed=0)
    assert fast_engine.unary_term_values(
        structure, UNARY_TERM, "x"
    ) == brute_engine.unary_term_values(structure, UNARY_TERM, "x")


@pytest.mark.parametrize("n", (100, 400))
def test_hanf_type_evaluation(benchmark, n):
    """[16]'s Hanf strategy: census of pointed-neighbourhood types, one
    evaluation per type.  Honest finding of this reproduction: the census's
    canonicalisation constant exceeds direct ball evaluation at these sizes
    except for highly regular inputs — the asymptotic win is real (types
    are bounded in n) but the paper-style constants bite."""
    from repro.core.hanf import evaluate_basic_unary_hanf, neighbourhood_type_census

    structure = bounded_degree_graph(n, 3, seed=n)
    term = BasicClTerm(
        variables=("y1", "y2"),
        psi=E("y1", "y2"),
        psi_radius=0,
        link_distance=1,
        edges=frozenset({(1, 2)}),
        unary=True,
    )
    values = benchmark(evaluate_basic_unary_hanf, structure, term)
    assert values == evaluate_basic_unary(structure, term)
    census = neighbourhood_type_census(structure, 1)
    benchmark.extra_info["order"] = n
    benchmark.extra_info["types"] = len(census.representatives)
