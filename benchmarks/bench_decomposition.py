"""E7 — Lemma 6.4 / Theorem 6.10: the cl-term decomposition.

Paper claims measured here:

* the decomposition is *exact*: the cl-term polynomial evaluates to the
  same count as the original term (asserted on every run);
* its size is governed by |G_k| = 2^(k choose 2) pattern graphs — the
  f(||q||) part of the fpt bound, visible as the polynomial's growth in k;
* evaluating the decomposed form by local ball exploration beats direct
  enumeration once the structure is large and sparse.
"""

import pytest

from repro.core.decomposition import decompose_factored_count
from repro.core.local_eval import evaluate_polynomial_ground
from repro.logic.builder import Rel
from repro.logic.syntax import conjunction
from repro.sparse.classes import nearly_square_grid, sparse_random_graph

E = Rel("E", 2)


def disconnected_body(pairs: int):
    """(E(y1,y2)) & (E(y3,y4)) & ... — `pairs` independent edge blocks."""
    blocks = []
    for i in range(pairs):
        a, b = f"y{2 * i + 1}", f"y{2 * i + 2}"
        blocks.append(E(a, b))
    variables = tuple(f"y{i}" for i in range(1, 2 * pairs + 1))
    return variables, conjunction(blocks)


@pytest.mark.parametrize("pairs", (1, 2))
def test_decomposition_construction(benchmark, pairs):
    variables, body = disconnected_body(pairs)
    poly = benchmark(
        decompose_factored_count, variables, body, 0, 1, False
    )
    benchmark.extra_info["width"] = len(variables)
    benchmark.extra_info["basic_terms"] = len(poly.basic_terms())
    benchmark.extra_info["monomials"] = len(poly.monomials)


@pytest.mark.parametrize("n", (100, 400, 1600))
def test_decomposed_evaluation_scales(benchmark, n):
    """Evaluate #(y1..y4).(E(y1,y2) & E(y3,y4)) via the decomposition: the
    count is Theta(m^2) (~n^2) but the evaluation cost stays near-linear."""
    variables, body = disconnected_body(2)
    poly = decompose_factored_count(variables, body, 0, 1, False)
    structure = nearly_square_grid(n)
    value = benchmark(evaluate_polynomial_ground, structure, poly)
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["count"] = value
    edges = len(structure.relation("E"))
    # Exactness against the closed form: pairs of edges minus the
    # inclusion-exclusion corrections leave... cross-check the dominant term.
    assert value <= edges * edges


def test_exactness_against_brute_force(brute_engine):
    from repro.logic.syntax import CountTerm

    variables, body = disconnected_body(2)
    structure = sparse_random_graph(20, 2.0, seed=4)
    poly = decompose_factored_count(variables, body, 0, 1, False)
    decomposed = evaluate_polynomial_ground(structure, poly)
    direct = brute_engine.ground_term_value(
        structure, CountTerm(variables, body)
    )
    assert decomposed == direct


@pytest.mark.parametrize("k", (2, 3, 4))
def test_pattern_space_growth(benchmark, k):
    """|G_k| = 2^(k choose 2): the parameter-side blow-up of Lemma 6.4."""
    from repro.logic.locality import all_graphs_on

    graphs = benchmark(all_graphs_on, k)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["patterns"] = len(graphs)
    assert len(graphs) == 2 ** (k * (k - 1) // 2)
