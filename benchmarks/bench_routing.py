"""E16 — cost-based routing vs the fixed cascade (docs/ARCHITECTURE.md,
cost layer).

Each parameter point runs the same mixed query workload through a
``route="auto"`` and a ``route="cascade"`` :class:`RobustEvaluator`.  Both
rows tag ``extra_info`` with a shared ``routing_group`` plus their
``engine_mode``; ``tools/bench_runner.py`` folds matching groups into the
report's ``routing`` section — the auto/cascade mean ratio per group, the
per-engine route share, the mispick rate (``cost.route.mispick`` over
``cost.route.auto``) and the predicted-vs-actual cost error distribution
(the ``cost.predict.error`` histogram), all harvested from the metrics
snapshot the conftest attaches per benchmark.

The acceptance shape (ISSUE 7): auto's mean must not exceed cascade's on
these common workloads, and the quick-suite mispick rate stays <= 10%.
"""

import pytest

from repro.logic.parser import parse_formula, parse_term
from repro.robust.guard import RobustEvaluator
from repro.sparse.classes import nearly_square_grid

#: Quick mode (REPRO_BENCH_QUICK=1) keeps only n <= 100.
SIZES = (64, 400)

MODES = ("auto", "cascade")

#: The mixed workload: one count, one model check, one unary term — the
#: three operation kinds the router prices differently.
COUNT_PHI = "E(x, y) & E(y, z)"
CHECK_PHI = "forall x. exists y. E(x, y)"
UNARY_TERM = "#(y). E(x, y)"


def _workload(engine, structure):
    count = engine.count(structure, parse_formula(COUNT_PHI), ["x", "y", "z"])
    holds = engine.model_check(structure, parse_formula(CHECK_PHI))
    values = engine.unary_term_values(structure, parse_term(UNARY_TERM), "x")
    return count, holds, values


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("n", SIZES)
def test_routing_mixed_workload(benchmark, n, mode):
    structure = nearly_square_grid(n)
    engine = RobustEvaluator(route=mode)

    result = benchmark(_workload, engine, structure)

    # Parity: routing is reorder-only, answers match the fixed cascade.
    reference = _workload(RobustEvaluator(route="cascade"), structure)
    assert result[0] == reference[0]
    assert result[1] == reference[1]
    assert list(result[2].items()) == list(reference[2].items())

    benchmark.extra_info["routing_group"] = f"mixed/n={structure.order()}"
    benchmark.extra_info["engine_mode"] = mode
    benchmark.extra_info["order"] = structure.order()


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("n", SIZES)
def test_routing_count_only(benchmark, n, mode):
    structure = nearly_square_grid(n)
    phi = parse_formula("exists y. E(x, y)")
    engine = RobustEvaluator(route=mode)

    count = benchmark(engine.count, structure, phi, ["x"])

    assert count == RobustEvaluator(route="cascade").count(structure, phi, ["x"])
    benchmark.extra_info["routing_group"] = f"count/n={structure.order()}"
    benchmark.extra_info["engine_mode"] = mode
    benchmark.extra_info["order"] = structure.order()
