"""E15 — serial vs parallel evaluation (docs/PARALLEL.md).

Measures the two parallel entry points the ISSUE names — the Section 8.2
per-cluster loop (:func:`~repro.core.cover_eval.evaluate_per_cluster`)
and the batched counter (:meth:`~repro.core.evaluator.Foc1Evaluator.count_many`)
— at 1, 2 and 4 workers on grid graphs, the suite's standard sparse
family.  Each benchmark records its worker count and a ``parallel_group``
key in ``extra_info``; ``tools/bench_runner.py`` folds matching groups
into the report's ``parallel`` section (speedup = workers-1 mean over
this mean) together with ``os.cpu_count()``, because thread-backend
speedups are bounded by both the core count and the GIL — on a 1-core
runner the honest expectation is ~1.0x, and the artifact says so rather
than hiding it.

The workers=1 rows double as the overhead guard: they take the exact
pre-parallel code path, so their delta against the PR3 baseline is the
"workers=1 costs nothing" acceptance check.
"""

import pytest

from repro.core.clterms import CoverTerm
from repro.core.cover_eval import evaluate_per_cluster
from repro.core.evaluator import Foc1Evaluator
from repro.logic.builder import Rel
from repro.logic.parser import parse_formula
from repro.plan.cache import PlanCache
from repro.sparse.classes import nearly_square_grid
from repro.sparse.covers import sparse_cover

E = Rel("E", 2)

WORKER_COUNTS = (1, 2, 4)

#: Quick mode (REPRO_BENCH_QUICK=1) keeps only n <= 100.
SIZES = (100, 400)

DEGREE_TERM = CoverTerm(
    variables=("y1", "y2"),
    edges=frozenset({(1, 2)}),
    link_distance=1,
    component_formulas=((frozenset({1, 2}), E("y1", "y2")),),
    unary=True,
)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("n", SIZES)
def test_per_cluster_workers(benchmark, n, workers):
    structure = nearly_square_grid(n)
    cover = sparse_cover(structure, 2)

    values = benchmark(
        evaluate_per_cluster, structure, cover, DEGREE_TERM, workers=workers
    )
    # Parity with the serial loop, byte-identical.
    serial = evaluate_per_cluster(structure, cover, DEGREE_TERM)
    assert list(values.items()) == list(serial.items())
    benchmark.extra_info["parallel_group"] = f"per_cluster/n={structure.order()}"
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["clusters"] = len(cover.clusters)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("n", (64,))
def test_count_many_workers(benchmark, n, workers):
    structures = [nearly_square_grid(n) for _ in range(8)]
    phi = parse_formula("E(x, y) & E(y, z)")
    # A private plan cache isolates the measurement from other modules but
    # still shows the one-plan-many-inputs reuse inside the batch.
    engine = Foc1Evaluator(workers=workers, plan_cache=PlanCache())

    counts = benchmark(engine.count_many, structures, phi, ["x", "y", "z"])
    assert counts == [
        Foc1Evaluator().count(s, phi, ["x", "y", "z"]) for s in structures
    ]
    benchmark.extra_info["parallel_group"] = f"count_many/n={n}x8"
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["batch"] = len(structures)
