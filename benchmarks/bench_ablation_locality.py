"""E10 — ablations of the engine's two locality mechanisms.

DESIGN.md calls out two design choices lifted from the paper's proof:

* *guards* (Remark 6.3): candidate generation from relation indexes and
  distance balls instead of universe scans;
* *factoring* (Lemma 6.4's product step): multiplying counts of
  variable-disjoint conjunct components.

Measured shape: disabling either mechanism keeps answers identical
(asserted) but changes the asymptotics — guards off turns the width-3
count into Theta(n^3); factoring off turns the product query from two
independent linear counts into one quadratic join.
"""

import pytest

from repro.core.evaluator import Foc1Evaluator
from repro.logic.parser import parse_formula
from repro.sparse.classes import nearly_square_grid

TWO_PATHS = parse_formula("E(x, y) & E(y, z) & !(x = z)")
PRODUCT = parse_formula("E(x, y) & E(z, w)")

MODES = {
    "full": dict(use_guards=True, use_factoring=True),
    "no_guards": dict(use_guards=False, use_factoring=True),
    "no_factoring": dict(use_guards=True, use_factoring=False),
    "neither": dict(use_guards=False, use_factoring=False),
}


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("n", (36, 100))
def test_two_path_count_ablation(benchmark, mode, n):
    engine = Foc1Evaluator(**MODES[mode])
    structure = nearly_square_grid(n)
    count = benchmark(engine.count, structure, TWO_PATHS, ["x", "y", "z"])
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["count"] = count


@pytest.mark.parametrize("mode", ("full", "no_factoring"))
@pytest.mark.parametrize("n", (100, 400))
def test_product_query_ablation(benchmark, mode, n):
    engine = Foc1Evaluator(**MODES[mode])
    structure = nearly_square_grid(n)
    count = benchmark(engine.count, structure, PRODUCT, ["x", "y", "z", "w"])
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["count"] = count


def test_all_modes_agree():
    structure = nearly_square_grid(36)
    reference = None
    for mode, options in MODES.items():
        engine = Foc1Evaluator(**options)
        count = engine.count(structure, TWO_PATHS, ["x", "y", "z"])
        if reference is None:
            reference = count
        assert count == reference, mode
