"""E6 — the splitter game (Section 8's definition of nowhere dense).

Paper claim: a class is nowhere dense iff Splitter wins the
(lambda(r), r)-game with lambda depending only on r — i.e. in a *bounded*
number of rounds, uniformly in |A|.

Measured shape: rounds-to-win stays flat as n grows on trees, grids and
bounded-degree graphs, and equals ~n on cliques (at radius >= 1 every ball
is the whole graph, so Splitter removes one vertex per round).
"""

import pytest

from repro.sparse.classes import bounded_degree_graph, nearly_square_grid, random_tree
from repro.sparse.splitter import rounds_needed
from repro.structures.builders import complete_graph

SPARSE = {
    "grid": lambda n: nearly_square_grid(n),
    "tree": lambda n: random_tree(n, seed=8),
    "bounded_degree": lambda n: bounded_degree_graph(n, 3, seed=8),
}

SIZES = (64, 256, 1024)
RADIUS = 2


@pytest.mark.parametrize("family", sorted(SPARSE))
@pytest.mark.parametrize("n", SIZES)
def test_sparse_family_rounds(benchmark, family, n):
    structure = SPARSE[family](n)
    rounds = benchmark(rounds_needed, structure, RADIUS)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["rounds"] = rounds
    # boundedness: the empirical lambda(2) for these families
    assert rounds <= 8


@pytest.mark.parametrize("n", (10, 20, 40))
def test_clique_rounds_grow_linearly(benchmark, n):
    structure = complete_graph(n)
    rounds = benchmark(rounds_needed, structure, 1)
    benchmark.extra_info["order"] = n
    benchmark.extra_info["rounds"] = rounds
    assert rounds == n


def test_rounds_flat_in_n_on_grids():
    counts = [rounds_needed(nearly_square_grid(n), RADIUS) for n in SIZES]
    assert max(counts) - min(counts) <= 2


@pytest.mark.parametrize("radius", (1, 2, 3))
def test_rounds_vs_radius_on_tree(benchmark, radius):
    """lambda as a function of r: larger radius may need more rounds."""
    structure = random_tree(500, seed=8)
    rounds = benchmark(rounds_needed, structure, radius)
    benchmark.extra_info["radius"] = radius
    benchmark.extra_info["rounds"] = rounds
