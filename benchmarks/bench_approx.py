"""E17 — sampling tier vs exact counting on dense inputs (docs/ENGINES.md,
approx layer).

Each parameter point counts the same dense-graph query twice: once exactly
(brute-force ``count_solutions``, the ground truth every other engine must
match) and once with the seeded :class:`~repro.approx.ApproxEvaluator` at
the default (eps=0.1, delta=0.05) guarantee.  Both rows tag ``extra_info``
with a shared ``approx_group`` plus their ``engine_mode``;
``tools/bench_runner.py`` folds matching groups into the report's
``approx`` section — the approx/exact mean ratio per group (``vs_exact``;
< 1.0 means sampling is already cheaper at a size exact can still reach)
and the observed ``relative_error`` of the estimate against the exact
count, which the ISSUE 9 acceptance gate requires to stay <= epsilon on
every feasible-exact bench.

The sizes are deliberately small enough that brute force terminates: the
point of the paired rows is a *checkable* error, not a scaling plot.  The
dense regime where only sampling answers inside a budget is exercised by
``tests/approx/test_differential_approx.py`` instead.
"""

import pytest

from repro.approx import ApproxEvaluator
from repro.logic.parser import parse_formula
from repro.logic.semantics import count_solutions
from repro.sparse.classes import dense_random_graph

#: Quick mode (REPRO_BENCH_QUICK=1) keeps only n <= 100.
SIZES = (20, 40)

MODES = ("exact", "approx")

EPSILON = 0.1
DELTA = 0.05

#: Dense two-hop count: on G(n, 1/2) roughly a quarter of all n^3 triples
#: satisfy it, so the sampler's density floor is never the binding term.
COUNT_PHI = "E(x, y) & E(y, z)"
VARIABLES = ("x", "y", "z")


def _exact(structure, phi):
    return count_solutions(structure, phi, list(VARIABLES))


def _approx(structure, phi):
    engine = ApproxEvaluator(epsilon=EPSILON, delta=DELTA, seed=0)
    return engine.count(structure, phi, list(VARIABLES))


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("n", SIZES)
def test_approx_vs_exact_dense(benchmark, n, mode):
    structure = dense_random_graph(n, probability=0.5, seed=n)
    phi = parse_formula(COUNT_PHI)
    truth = _exact(structure, phi)

    if mode == "exact":
        result = benchmark(_exact, structure, phi)
        assert result == truth
    else:
        result = benchmark(_approx, structure, phi)
        # Determinism: the same seed must reproduce the same estimate.
        assert result.value == _approx(structure, phi).value
        error = result.relative_error_vs(truth)
        benchmark.extra_info["relative_error"] = error
        benchmark.extra_info["epsilon"] = EPSILON
        benchmark.extra_info["samples"] = result.samples

    benchmark.extra_info["approx_group"] = f"dense/n={structure.order()}"
    benchmark.extra_info["engine_mode"] = mode
    benchmark.extra_info["order"] = structure.order()
