"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
index (E1-E12).  The harness runs with::

    pytest benchmarks/ --benchmark-only

Benchmarks record qualitative facts (who wins, cover degrees, game rounds)
in ``benchmark.extra_info`` so the pytest-benchmark table carries the
experiment's "series" alongside the timings; EXPERIMENTS.md summarises the
shapes against the paper's claims.

``tools/bench_runner.py`` drives this harness headlessly.  It communicates
through two environment variables handled here:

* ``REPRO_BENCH_QUICK=1`` — deselect the large parameter points (big ``n``,
  deep quantifier nests) so a smoke pass finishes in seconds;
* ``REPRO_BENCH_METRICS=1`` — install a fresh
  :class:`repro.obs.MetricsRegistry` around every benchmark and attach its
  counter snapshot plus the memo hit rate to ``benchmark.extra_info``, from
  where the runner folds them into ``BENCH_pr2.json``.
"""

from __future__ import annotations

import os

import pytest

from repro.core.baseline import BruteForceEvaluator
from repro.core.evaluator import Foc1Evaluator
from repro.obs import MetricsRegistry, collect_metrics


@pytest.fixture(scope="session")
def fast_engine() -> Foc1Evaluator:
    return Foc1Evaluator()


@pytest.fixture(scope="session")
def full_foc_engine() -> Foc1Evaluator:
    """Engine with the fragment check off: evaluates full FOC(P) inline."""
    return Foc1Evaluator(check_fragment=False)


@pytest.fixture(scope="session")
def brute_engine() -> BruteForceEvaluator:
    return BruteForceEvaluator()


#: Size grids shared by the scaling experiments.  Brute force only runs on
#: the SMALL sizes (it is Theta(n^width)); the engine runs everywhere.
SMALL_SIZES = (16, 36, 64)
LARGE_SIZES = (100, 400, 1600)


# ---------------------------------------------------------------------------
# Bench-runner integration (tools/bench_runner.py)
# ---------------------------------------------------------------------------

#: Quick-mode ceilings per parameter name.  Selection is keyed on the
#: *parameter values* (not on ``-k`` substrings, where "4" would also match
#: "400"): a test is deselected iff one of these parameters exceeds its
#: ceiling.
_QUICK_LIMITS = {
    "n": 100,
    "customers": 200,
    "quantifiers": 2,
}


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def pytest_collection_modifyitems(config, items):
    if not _quick_mode():
        return
    kept, dropped = [], []
    for item in items:
        params = getattr(getattr(item, "callspec", None), "params", {})
        if any(
            name in params
            and isinstance(params[name], int)
            and params[name] > limit
            for name, limit in _QUICK_LIMITS.items()
        ):
            dropped.append(item)
        else:
            kept.append(item)
    if dropped:
        config.hook.pytest_deselected(items=dropped)
        items[:] = kept


@pytest.fixture(autouse=True)
def _bench_metrics(request):
    """Collect engine counters per benchmark when REPRO_BENCH_METRICS=1.

    Each test gets a fresh registry (counters accumulate over *all* rounds
    pytest-benchmark runs, so absolute counts scale with rounds; ratios
    like the memo hit rate do not).  The snapshot lands in
    ``benchmark.extra_info["metrics"]`` for the bench runner to harvest.
    """
    if os.environ.get("REPRO_BENCH_METRICS", "") != "1":
        yield
        return
    # Resolve the benchmark fixture during setup: at teardown time it has
    # already been finalised and getfixturevalue() refuses to serve it.
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    registry = MetricsRegistry()
    with collect_metrics(registry):
        yield
    if benchmark is not None:
        benchmark.extra_info["metrics"] = registry.snapshot()
        rate = registry.memo_hit_rate()
        if rate is not None:
            benchmark.extra_info["memo_hit_rate"] = rate
