"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
index (E1-E12).  The harness runs with::

    pytest benchmarks/ --benchmark-only

Benchmarks record qualitative facts (who wins, cover degrees, game rounds)
in ``benchmark.extra_info`` so the pytest-benchmark table carries the
experiment's "series" alongside the timings; EXPERIMENTS.md summarises the
shapes against the paper's claims.
"""

from __future__ import annotations

import pytest

from repro.core.baseline import BruteForceEvaluator
from repro.core.evaluator import Foc1Evaluator


@pytest.fixture(scope="session")
def fast_engine() -> Foc1Evaluator:
    return Foc1Evaluator()


@pytest.fixture(scope="session")
def full_foc_engine() -> Foc1Evaluator:
    """Engine with the fragment check off: evaluates full FOC(P) inline."""
    return Foc1Evaluator(check_fragment=False)


@pytest.fixture(scope="session")
def brute_engine() -> BruteForceEvaluator:
    return BruteForceEvaluator()


#: Size grids shared by the scaling experiments.  Brute force only runs on
#: the SMALL sizes (it is Theta(n^width)); the engine runs everywhere.
SMALL_SIZES = (16, 36, 64)
LARGE_SIZES = (100, 400, 1600)
