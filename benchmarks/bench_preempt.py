"""Preemption overhead: suspend + checkpoint + resume vs uninterrupted.

PR 6's acceptance bar: a run that is suspended mid-evaluation,
checkpointed to disk, reloaded and resumed must re-spend <= 1.05x the
*steps* of the uninterrupted run.  Steps are the engine's own
deterministic work counter, so the ratio isolates re-done evaluation
work from the (constant) cost of exporting, persisting and reloading
the checkpoint itself.

The workload is the unary-term path (``#(y). E(x, y)`` over every
element of a grid): each element's value is an independent memo entry,
so the checkpoint carries exactly the elements the first quantum
finished and the resumed quantum pays only for the remainder.  That is
the shape the checkpoint protects; a monolithic materialise stratum
suspended halfway through is simply lost (the stratum ledger records
only *completed* strata) and would honestly report ~1.5x.

Each group runs in two modes, tagged in ``extra_info`` with a shared
``preempt_group`` key and its ``mode``:

* ``uninterrupted`` — one plain evaluation, no session, no budget;
* ``resumed`` — a preemptible budget sized to suspend roughly halfway,
  the suspension checkpointed to a temp file, reloaded, and the
  evaluation driven to completion in a second quantum.

``extra_info["steps"]`` records the total steps the mode spent (the
resumed mode sums both quanta); ``tools/bench_runner.py`` folds matching
groups into the report's ``resume_overhead`` section, where *overhead*
is resumed steps over uninterrupted steps (gate: <= 1.05) and
*wall_overhead* is the wall-clock ratio including checkpoint I/O.  Both
modes assert the identical answer, so the table can never trade
correctness for speed.
"""

import pytest

from repro.core.evaluator import Foc1Evaluator
from repro.errors import SuspendedError
from repro.logic.parser import parse_term
from repro.robust import EvaluationBudget
from repro.robust.checkpoint import (
    CheckpointSession,
    checkpoint_session,
    load_checkpoint,
    save_checkpoint,
)
from repro.sparse.classes import nearly_square_grid

MODES = ("uninterrupted", "resumed")

#: Quick mode (REPRO_BENCH_QUICK=1) keeps only n <= 100.
SIZES = (64, 100)

TERM = parse_term("#(y). E(x, y)")
VARIABLE = "x"


def _measure_steps(structure) -> int:
    """Total cooperative steps of the uninterrupted run (sets the quantum)."""
    budget = EvaluationBudget(max_steps=10**9, preemptible=True)
    Foc1Evaluator(budget=budget).unary_term_values(structure, TERM, VARIABLE)
    return budget.steps


def _run_uninterrupted(structure):
    return Foc1Evaluator().unary_term_values(structure, TERM, VARIABLE)


def _run_resumed(structure, quantum, ckpt_path):
    """Suspend once at ``quantum`` steps, persist, reload, finish.

    Returns ``(values, suspensions, steps_spent)`` where ``steps_spent``
    sums both quanta — the engine work actually re-done, excluding the
    constant checkpoint save/load itself.
    """
    session = CheckpointSession(operation="bench", query_key="bench")
    budget = EvaluationBudget(max_steps=quantum, preemptible=True)
    engine = Foc1Evaluator(budget=budget)
    try:
        with checkpoint_session(session):
            values = engine.unary_term_values(structure, TERM, VARIABLE)
            return values, 0, budget.steps
    except SuspendedError:
        save_checkpoint(session.snapshot(budget.steps), ckpt_path)
    resumed = CheckpointSession(resume=load_checkpoint(ckpt_path))
    second = EvaluationBudget(max_steps=10**9, preemptible=True)
    engine = Foc1Evaluator(budget=second)
    with checkpoint_session(resumed):
        values = engine.unary_term_values(structure, TERM, VARIABLE)
        return values, 1, budget.steps + second.steps


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("n", SIZES)
def test_unary_resume_overhead(benchmark, tmp_path, n, mode):
    structure = nearly_square_grid(n)
    expected = _run_uninterrupted(structure)
    steps = _measure_steps(structure)

    if mode == "uninterrupted":
        value = benchmark(_run_uninterrupted, structure)
        assert value == expected
        spent = steps
    else:
        quantum = max(1, steps // 2)
        ckpt_path = str(tmp_path / "bench.ckpt")

        def run():
            return _run_resumed(structure, quantum, ckpt_path)

        value, suspensions, spent = benchmark(run)
        assert value == expected
        assert suspensions == 1  # the quantum really did split the run
        assert spent <= steps * 1.05  # the acceptance bar itself

    benchmark.extra_info["preempt_group"] = f"unary/n={structure.order()}"
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["steps"] = spent
    benchmark.extra_info["order"] = structure.order()
