"""E13 — the composed Section 8.2 loop.

Measures the full pipeline (sparse cover -> per-cluster -> splitter move ->
removal surgery -> Lemma 7.9 rewriting -> recombination) against the plain
ball-exploration evaluation of the same basic cl-term, and records how much
machinery each run engaged (clusters, removals, base-case sizes).
"""

import pytest

from repro.core.clterms import BasicClTerm
from repro.core.local_eval import evaluate_basic_unary
from repro.core.main_algorithm import (
    MainAlgorithmStats,
    evaluate_unary_main_algorithm,
)
from repro.logic.builder import Rel
from repro.sparse.classes import nearly_square_grid, random_tree

E = Rel("E", 2)

TERM = BasicClTerm(
    ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=True
)

FAMILIES = {
    "grid": lambda n: nearly_square_grid(n),
    "tree": lambda n: random_tree(n, seed=6),
}

SIZES = (64, 256)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n", SIZES)
def test_main_algorithm(benchmark, family, n):
    structure = FAMILIES[family](n)
    stats = MainAlgorithmStats()

    def run():
        local_stats = MainAlgorithmStats()
        return evaluate_unary_main_algorithm(
            structure, TERM, depth=1, stats=local_stats
        ), local_stats

    (values, stats) = benchmark(run)
    assert values == evaluate_basic_unary(structure, TERM)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["clusters"] = stats.clusters_processed
    benchmark.extra_info["removals"] = stats.removals


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n", SIZES)
def test_ball_exploration_baseline(benchmark, family, n):
    structure = FAMILIES[family](n)
    values = benchmark(evaluate_basic_unary, structure, TERM)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["total"] = sum(values.values())
