"""E12 — Example 5.4: the coloured-digraph triangle census end-to-end.

The paper's richest FOC1(P) query — nested counting terms (#-depth 2), a
derived ground count, arithmetic in the head.  Measured: engine vs brute
force on small instances (answers asserted equal), engine alone on larger
instances; output size is recorded because the query's answer set is
inherently quadratic when many witnesses exist.
"""

import pytest

from repro.logic.examples import (
    count_phi_triangles_equal_reds,
    example_5_4_query,
    phi_blue_balance,
)
from repro.sparse.classes import coloured_digraph

SMALL = (8, 12, 16)
LARGE = (40, 80, 160)


@pytest.mark.parametrize("n", SMALL)
def test_query_engine_small(benchmark, fast_engine, brute_engine, n):
    graph = coloured_digraph(n, 2.5, seed=n)
    query = example_5_4_query()
    rows = benchmark(fast_engine.evaluate_query, graph, query)
    assert sorted(rows) == sorted(brute_engine.evaluate_query(graph, query))
    benchmark.extra_info["order"] = n
    benchmark.extra_info["rows"] = len(rows)


@pytest.mark.parametrize("n", SMALL)
def test_query_brute_force_small(benchmark, brute_engine, n):
    graph = coloured_digraph(n, 2.5, seed=n)
    query = example_5_4_query()
    rows = benchmark(brute_engine.evaluate_query, graph, query)
    benchmark.extra_info["order"] = n
    benchmark.extra_info["rows"] = len(rows)


@pytest.mark.parametrize("n", LARGE)
def test_query_engine_large(benchmark, fast_engine, n):
    graph = coloured_digraph(n, 2.5, seed=n)
    query = example_5_4_query()
    rows = benchmark(fast_engine.evaluate_query, graph, query)
    benchmark.extra_info["order"] = n
    benchmark.extra_info["rows"] = len(rows)


@pytest.mark.parametrize("n", LARGE)
def test_ground_census_term(benchmark, fast_engine, n):
    """t_{Delta,R}: a #-depth-2 ground term, engine only."""
    graph = coloured_digraph(n, 2.5, seed=n)
    value = benchmark(
        fast_engine.ground_term_value, graph, count_phi_triangles_equal_reds()
    )
    benchmark.extra_info["order"] = n
    benchmark.extra_info["balanced_nodes"] = value


@pytest.mark.parametrize("n", LARGE)
def test_condition_counting(benchmark, fast_engine, n):
    graph = coloured_digraph(n, 2.5, seed=n)
    value = benchmark(fast_engine.count, graph, phi_blue_balance("x"), ["x"])
    benchmark.extra_info["order"] = n
    benchmark.extra_info["witnesses"] = value
