"""E11 — the Removal Lemma (Lemmas 7.8 / 7.9).

Paper claim: "for fixed sigma and r, we can compute A astrix_r d from A and
d in linear time", and the formula/term rewriting preserves semantics — the
recursion step of the Section 8.2 algorithm.

Measured shape: surgery time grows linearly in ||A||; the size of the
rewritten formula depends only on the formula and r (not on A); the
equivalence holds (asserted).
"""

import pytest

from repro.core.removal import (
    removal_formula,
    removal_ground_term,
    remove_element,
)
from repro.logic.parser import parse_formula
from repro.logic.semantics import satisfies
from repro.logic.syntax import expression_size
from repro.sparse.classes import nearly_square_grid, random_tree

RADIUS = 3
SIZES = (100, 400, 1600)


@pytest.mark.parametrize("n", SIZES)
def test_surgery_cost_on_grid(benchmark, n):
    structure = nearly_square_grid(n)
    victim = structure.universe_order[n // 2]
    removed = benchmark(remove_element, structure, victim, RADIUS)
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["removed_size"] = removed.size()
    assert removed.order() == structure.order() - 1


@pytest.mark.parametrize("n", SIZES)
def test_surgery_cost_on_tree(benchmark, n):
    structure = random_tree(n, seed=n)
    victim = structure.universe_order[0]
    removed = benchmark(remove_element, structure, victim, RADIUS)
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["removed_size"] = removed.size()


FORMULAS = [
    "exists z. (E(x, z) & dist(z, y) <= 2)",
    "forall z. (E(x, z) -> exists w. (E(z, w) & !(w = y)))",
]


@pytest.mark.parametrize("source", FORMULAS)
def test_formula_rewriting_cost(benchmark, source):
    phi = parse_formula(source)
    rewritten = benchmark(removal_formula, phi, frozenset({"x"}), RADIUS)
    benchmark.extra_info["input_size"] = expression_size(phi)
    benchmark.extra_info["output_size"] = expression_size(rewritten)


def test_equivalence_spot_check(brute_engine):
    structure = random_tree(40, seed=1)
    phi = parse_formula("exists z. (E(x, z) & dist(z, y) <= 2)")
    victim = structure.universe_order[5]
    removed = remove_element(structure, victim, RADIUS)
    nodes = [a for a in structure.universe_order if a != victim][:6]
    for a in nodes:
        for b in nodes:
            rewritten = removal_formula(phi, frozenset(), RADIUS)
            assert satisfies(structure, phi, {"x": a, "y": b}) == satisfies(
                removed, rewritten, {"x": a, "y": b}
            )


def test_term_rewriting_part_count(benchmark):
    body = parse_formula("E(y1, y2) & dist(y1, y3) <= 2")
    parts = benchmark(removal_ground_term, ("y1", "y2", "y3"), body, RADIUS)
    assert len(parts) == 8  # all subsets of three counted variables
    benchmark.extra_info["parts"] = len(parts)
