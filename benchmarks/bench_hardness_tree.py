"""E1 — Theorem 4.1: the graph -> tree reduction.

Paper claims measured here:

* ``T_G`` is computable in quadratic time and ``||T_G|| = O(||G||^2)``;
* ``phi-hat`` is computable in polynomial time with polynomial size;
* the equivalence ``G |= phi iff T_G |= phi-hat`` holds (asserted).

The AW[*]-hardness itself is a conditional lower bound and not measurable;
its constructive content is exactly this reduction.
"""

import pytest

from repro.hardness.tree_reduction import build_tree, reduce_instance, translate_sentence
from repro.logic.parser import parse_formula
from repro.logic.semantics import satisfies
from repro.logic.syntax import expression_size
from repro.sparse.classes import sparse_random_graph

TRIANGLE = parse_formula(
    "exists x. exists y. exists z. (E(x, y) & E(y, z) & E(x, z))"
)

GRAPH_SIZES = (4, 8, 16, 32, 64)


@pytest.mark.parametrize("n", GRAPH_SIZES)
def test_tree_construction(benchmark, n):
    graph = sparse_random_graph(n, 2.0, seed=n)
    reduction = benchmark(build_tree, graph)
    tree = reduction.tree
    benchmark.extra_info["graph_size"] = graph.size()
    benchmark.extra_info["tree_size"] = tree.size()
    benchmark.extra_info["blowup"] = round(tree.size() / graph.size(), 2)
    # the quadratic bound of Theorem 4.1
    assert tree.size() <= 25 * graph.size() ** 2


@pytest.mark.parametrize("quantifiers", (1, 2, 3, 4))
def test_sentence_translation(benchmark, quantifiers):
    prefix = "".join(f"exists x{i}. " for i in range(quantifiers))
    body = (
        " & ".join(f"E(x0, x{i})" for i in range(1, quantifiers))
        or "E(x0, x0)"
    )
    sentence = parse_formula(prefix + "(" + body + ")")
    translated = benchmark(translate_sentence, sentence)
    benchmark.extra_info["input_size"] = expression_size(sentence)
    benchmark.extra_info["output_size"] = expression_size(translated)


@pytest.mark.parametrize("n", (3, 4, 5))
def test_equivalence_checking(benchmark, full_foc_engine, n):
    """Time the *evaluation* of phi-hat on T_G, asserting the equivalence."""
    graph = sparse_random_graph(n, 1.5, seed=n + 10)
    tree, phi_hat = reduce_instance(graph, TRIANGLE)
    expected = satisfies(graph, TRIANGLE)
    result = benchmark(full_foc_engine.model_check, tree, phi_hat)
    assert result == expected
    benchmark.extra_info["graph_order"] = graph.order()
    benchmark.extra_info["tree_order"] = tree.order()
