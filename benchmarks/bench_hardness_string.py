"""E2 — Theorem 4.3: the graph -> string reduction.

Same measurements as E1, for the word encoding: ``S_G`` construction time
and quadratic size bound, translation cost, and the evaluation of phi-hat
on the string structure (equivalence asserted).
"""

import pytest

from repro.hardness.string_reduction import (
    build_string,
    reduce_instance,
    translate_sentence,
)
from repro.logic.parser import parse_formula
from repro.logic.semantics import satisfies
from repro.logic.syntax import expression_size
from repro.sparse.classes import sparse_random_graph

HAS_EDGE = parse_formula("exists x. exists y. E(x, y)")

GRAPH_SIZES = (4, 8, 16, 32, 64)


@pytest.mark.parametrize("n", GRAPH_SIZES)
def test_string_construction(benchmark, n):
    graph = sparse_random_graph(n, 2.0, seed=n)
    reduction = benchmark(build_string, graph)
    benchmark.extra_info["graph_size"] = graph.size()
    benchmark.extra_info["word_length"] = len(reduction.word)
    # |S_G| <= n(n+1) + sum over edges of (j+1) = O(n^2 + m*n)
    assert len(reduction.word) <= 4 * (n + 1) ** 2


@pytest.mark.parametrize("quantifiers", (1, 2, 3))
def test_sentence_translation(benchmark, quantifiers):
    prefix = "".join(f"exists x{i}. " for i in range(quantifiers))
    body = (
        " & ".join(f"E(x0, x{i})" for i in range(1, quantifiers))
        or "E(x0, x0)"
    )
    sentence = parse_formula(prefix + "(" + body + ")")
    translated = benchmark(translate_sentence, sentence)
    benchmark.extra_info["input_size"] = expression_size(sentence)
    benchmark.extra_info["output_size"] = expression_size(translated)


@pytest.mark.parametrize("n", (2, 3, 4))
def test_equivalence_checking(benchmark, full_foc_engine, n):
    graph = sparse_random_graph(n, 1.5, seed=n + 20)
    string, phi_hat = reduce_instance(graph, HAS_EDGE)
    expected = satisfies(graph, HAS_EDGE)
    result = benchmark(full_foc_engine.model_check, string, phi_hat)
    assert result == expected
    benchmark.extra_info["graph_order"] = graph.order()
    benchmark.extra_info["string_length"] = string.order()
