"""E5 — Theorem 8.1: sparse (r, 2r)-neighbourhood covers.

Paper claim: on nowhere dense classes one can compute, in time
f(r, eps) * n^(1+eps), an (r, 2r)-neighbourhood cover of maximum degree at
most n^eps.

Measured shape: construction time on sparse families grows near-linearly;
the cover's maximum degree stays small on trees/grids/bounded-degree
graphs, while on the dense control the *cluster size* explodes (one cluster
swallows the whole graph) — locality buys nothing there.
"""

import pytest

from repro.sparse.classes import (
    bounded_degree_graph,
    dense_random_graph,
    nearly_square_grid,
    random_tree,
)
from repro.sparse.covers import cover_statistics, sparse_cover, trivial_cover

FAMILIES = {
    "grid": lambda n: nearly_square_grid(n),
    "tree": lambda n: random_tree(n, seed=5),
    "bounded_degree": lambda n: bounded_degree_graph(n, 3, seed=5),
    "dense_gnp": lambda n: dense_random_graph(min(n, 100), 0.5, seed=5),
}

SIZES = (100, 400, 900)
RADIUS = 2


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n", SIZES)
def test_sparse_cover_construction(benchmark, family, n):
    structure = FAMILIES[family](n)
    cover = benchmark(sparse_cover, structure, RADIUS)
    stats = cover_statistics(cover)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info.update(
        {k: float(v) for k, v in stats.items()}
    )
    # Theorem 8.1's radius guarantee, verified on every run.
    assert stats["max_cluster_radius"] <= 2 * RADIUS


@pytest.mark.parametrize("n", (100, 400))
def test_trivial_cover_baseline(benchmark, n):
    """Ablation baseline: X(a) = N_r(a) — more clusters, higher degree."""
    structure = nearly_square_grid(n)
    cover = benchmark(trivial_cover, structure, RADIUS)
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["clusters"] = len(cover.clusters)
    benchmark.extra_info["max_degree"] = cover.max_degree()


def test_sparse_families_keep_degree_small():
    for family in ("grid", "tree", "bounded_degree"):
        structure = FAMILIES[family](400)
        stats = cover_statistics(sparse_cover(structure, RADIUS))
        assert stats["max_degree"] <= 40, family


def test_dense_control_has_giant_cluster():
    structure = FAMILIES["dense_gnp"](100)
    stats = cover_statistics(sparse_cover(structure, RADIUS))
    assert stats["largest_cluster"] >= structure.order() * 0.9
