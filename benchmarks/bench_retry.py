"""Retry-machinery overhead on fault-free runs (docs/ROBUSTNESS.md).

PR 5's acceptance bar: arming a :class:`~repro.robust.retry.RetryPolicy`
on a run that never faults must cost < 5% over the plain parallel path.
The only per-shard additions on the happy path are the fault checkpoints
(one ``is None`` test each when no injector is installed) and the
fresh-slice bookkeeping, so the expected overhead is noise-level.

Each benchmark runs the same workload twice across the ``retries``
parameter — ``0`` (``retry=None``, the pre-PR5 path) and ``2``
(``RetryPolicy(retries=2)`` armed but never triggered) — and records a
``retry_group`` key plus its ``retries`` value in ``extra_info``.
``tools/bench_runner.py`` folds matching groups into the report's
``retry_overhead`` section (overhead = this mean over the retries=0
mean, so 1.0 is free and the gate is < 1.05).

Workloads mirror ``bench_parallel.py`` at workers=2: the Section 8.2
per-cluster loop and a raw ``WorkerPool.run_tasks`` fan-out, both
asserted byte-identical to their serial/plain counterparts.
"""

import pytest

from repro.core.clterms import CoverTerm
from repro.core.cover_eval import evaluate_per_cluster
from repro.logic.builder import Rel
from repro.parallel.pool import WorkerPool
from repro.robust.retry import RetryPolicy
from repro.sparse.classes import nearly_square_grid
from repro.sparse.covers import sparse_cover

E = Rel("E", 2)

RETRY_COUNTS = (0, 2)

#: Quick mode (REPRO_BENCH_QUICK=1) keeps only n <= 100.
SIZES = (100, 400)

DEGREE_TERM = CoverTerm(
    variables=("y1", "y2"),
    edges=frozenset({(1, 2)}),
    link_distance=1,
    component_formulas=((frozenset({1, 2}), E("y1", "y2")),),
    unary=True,
)


def _policy(retries):
    """``None`` for the plain path, an armed deterministic policy otherwise."""
    if retries == 0:
        return None
    return RetryPolicy(retries=retries)


@pytest.mark.parametrize("retries", RETRY_COUNTS)
@pytest.mark.parametrize("n", SIZES)
def test_per_cluster_retry_overhead(benchmark, n, retries):
    structure = nearly_square_grid(n)
    cover = sparse_cover(structure, 2)

    values = benchmark(
        evaluate_per_cluster,
        structure,
        cover,
        DEGREE_TERM,
        workers=2,
        retry=_policy(retries),
    )
    # Fault-free, so the armed run must match the serial loop byte-for-byte.
    serial = evaluate_per_cluster(structure, cover, DEGREE_TERM)
    assert list(values.items()) == list(serial.items())
    benchmark.extra_info["retry_group"] = f"per_cluster/n={structure.order()}"
    benchmark.extra_info["retries"] = retries
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["clusters"] = len(cover.clusters)


@pytest.mark.parametrize("retries", RETRY_COUNTS)
@pytest.mark.parametrize("tasks", (16,))
def test_run_tasks_retry_overhead(benchmark, tasks, retries):
    # A raw pool fan-out isolates the driver's own bookkeeping from engine
    # costs: each task is a small pure-Python loop.
    pool = WorkerPool(workers=2, backend="thread")
    work = [
        (lambda i: (lambda budget=None: sum(range(2_000 + i))))(i)
        for i in range(tasks)
    ]

    results = benchmark(pool.run_tasks, work, retry=_policy(retries))
    assert results == [sum(range(2_000 + i)) for i in range(tasks)]
    benchmark.extra_info["retry_group"] = f"run_tasks/t={tasks}"
    benchmark.extra_info["retries"] = retries
    benchmark.extra_info["tasks"] = tasks
