"""E17 — columnar id-space kernels vs the element-space reference oracle.

The ISSUE 8 refactor rewrote the local-evaluation hot paths (pattern
walks, D-ball exploration, the sparse-cover greedy) onto interned-id
kernels (:mod:`repro.structures.columnar`); the pre-columnar set-based
implementations survive verbatim in :mod:`repro.core.reference`.  Each
parameter point here runs *both* implementations on the same structure
and asserts byte-identical answers, so the speedup column can never be
bought with a semantics change.

Both rows of a pair tag ``extra_info`` with a shared ``kernel_group``
plus their ``impl`` (``"columnar"`` or ``"reference"``);
``tools/bench_runner.py`` folds matching groups into the report's
``kernels`` section — the columnar/reference mean ratio per group
(acceptance: <= 1.0, i.e. the refactor pays for itself) and the peak-RSS
reading per row (``resource.getrusage``; ru_maxrss is process-monotonic,
so the per-group delta is ordering-dependent and reported as context,
not as a gate).

Representation caches are warmed outside the timed region on both sides
(``structure.adjacency()`` for the reference, ``structure.columnar()``
for the kernels): the engine builds each once per structure, so the
steady-state evaluation loop is the honest comparison.
"""

import resource

import pytest

from repro.core.clterms import BasicClTerm
from repro.core.local_eval import evaluate_basic_unary
from repro.core.reference import (
    reference_ball,
    reference_distances_from,
    reference_evaluate_basic_unary,
)
from repro.logic.syntax import And, Atom, Eq, Not
from repro.sparse.classes import nearly_square_grid
from repro.sparse.covers import sparse_cover
from repro.structures.gaifman import ball

#: Quick mode (REPRO_BENCH_QUICK=1) keeps only n <= 100.
SIZES = (64, 400)

IMPLS = ("columnar", "reference")


def _term() -> BasicClTerm:
    """A width-2 linked pattern with a local psi — exercises the compiled
    pattern plans, the bitset membership tests and the ball cache."""
    return BasicClTerm(
        ("y1", "y2"),
        And(Atom("E", ("y1", "y2")), Not(Eq("y1", "y2"))),
        psi_radius=1,
        link_distance=2,
        edges=((1, 2),),
        unary=True,
    )


def _warm(structure) -> None:
    structure.adjacency()
    structure.columnar()


def _tag(benchmark, structure, group: str, impl: str) -> None:
    benchmark.extra_info["kernel_group"] = f"{group}/n={structure.order()}"
    benchmark.extra_info["impl"] = impl
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["peak_rss_kb"] = resource.getrusage(
        resource.RUSAGE_SELF
    ).ru_maxrss


@pytest.mark.parametrize("impl", IMPLS)
@pytest.mark.parametrize("n", SIZES)
def test_kernel_unary_counts(benchmark, n, impl):
    structure = nearly_square_grid(n)
    term = _term()
    _warm(structure)
    fn = (
        evaluate_basic_unary
        if impl == "columnar"
        else reference_evaluate_basic_unary
    )
    other = (
        reference_evaluate_basic_unary
        if impl == "columnar"
        else evaluate_basic_unary
    )

    result = benchmark(fn, structure, term)

    reference = other(structure, term)
    assert result == reference
    assert list(result) == list(reference)  # same insertion order
    _tag(benchmark, structure, "unary", impl)


def _columnar_ball_sweep(structure, radius):
    return sum(
        len(ball(structure, (element,), radius))
        for element in structure.universe_order
    )


def _reference_ball_sweep(structure, radius):
    return sum(
        len(reference_ball(structure, [element], radius))
        for element in structure.universe_order
    )


@pytest.mark.parametrize("impl", IMPLS)
@pytest.mark.parametrize("n", SIZES)
def test_kernel_ball_sweep(benchmark, n, impl):
    """Every element's 2-ball — the Remark 6.3 exploration primitive."""
    structure = nearly_square_grid(n)
    _warm(structure)
    fn = _columnar_ball_sweep if impl == "columnar" else _reference_ball_sweep

    total = benchmark(fn, structure, 2)

    assert total == _reference_ball_sweep(structure, 2)
    _tag(benchmark, structure, "balls", impl)


def _reference_sparse_cover(structure, radius):
    """The pre-columnar greedy construction over the reference BFS."""
    centres = []
    closest = {}
    for element in structure.universe_order:
        if element in closest and closest[element][0] <= radius:
            continue
        index = len(centres)
        centres.append(element)
        for covered, dist in reference_distances_from(
            structure, [element], radius
        ).items():
            best = closest.get(covered)
            if best is None or dist < best[0]:
                closest[covered] = (dist, index)
    clusters = tuple(
        reference_ball(structure, [centre], 2 * radius) for centre in centres
    )
    assignment = {
        element: closest[element][1] for element in structure.universe_order
    }
    return clusters, assignment, tuple(centres)


@pytest.mark.parametrize("impl", IMPLS)
@pytest.mark.parametrize("n", SIZES)
def test_kernel_sparse_cover(benchmark, n, impl):
    structure = nearly_square_grid(n)
    radius = 2
    _warm(structure)

    if impl == "columnar":
        cover = benchmark(sparse_cover, structure, radius)
        clusters, assignment, centres = _reference_sparse_cover(
            structure, radius
        )
        assert cover.clusters == clusters
        assert cover.assignment == assignment
        assert list(cover.assignment) == list(assignment)
        assert cover.centres == centres
    else:
        clusters, assignment, centres = benchmark(
            _reference_sparse_cover, structure, radius
        )
        cover = sparse_cover(structure, radius)
        assert cover.clusters == clusters
        assert cover.assignment == assignment
        assert cover.centres == centres
    _tag(benchmark, structure, "cover", impl)
