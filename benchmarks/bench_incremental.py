"""E14 — incremental maintenance under updates (open question 2 prototype).

[16] maintains FOC(P) answers under updates on bounded-degree classes in
constant time per update.  Our locality-based cache recomputes only the
dependency ball of the touched tuple; measured here against recompute-from-
scratch on bounded-degree graphs of growing size.

Measured shape: per-update cost of the incremental cache is flat in n
(constant-size balls), while full recomputation grows linearly.
"""

import pytest

from repro.core.clterms import BasicClTerm
from repro.core.incremental import IncrementalUnaryCache
from repro.core.local_eval import evaluate_basic_unary
from repro.logic.builder import Rel
from repro.sparse.classes import bounded_degree_graph

E = Rel("E", 2)

TERM = BasicClTerm(
    ("y1", "y2"), E("y1", "y2"), 0, 1, frozenset({(1, 2)}), unary=True
)

SIZES = (100, 400, 1600)


@pytest.mark.parametrize("n", SIZES)
def test_incremental_update(benchmark, n):
    structure = bounded_degree_graph(n, 3, seed=n)
    cache = IncrementalUnaryCache(structure, TERM)
    nodes = list(structure.universe_order)
    state = {"flip": False}

    def toggle_edge():
        # alternate insert/delete of the same edge: a steady update stream
        if state["flip"]:
            cache.delete("E", (nodes[0], nodes[1]))
        else:
            cache.insert("E", (nodes[0], nodes[1]))
        state["flip"] = not state["flip"]

    benchmark(toggle_edge)
    cache.verify()
    benchmark.extra_info["order"] = n
    benchmark.extra_info["recompute_ratio"] = round(
        cache.stats.recompute_ratio(n), 4
    )


@pytest.mark.parametrize("n", SIZES)
def test_full_recompute_baseline(benchmark, n):
    structure = bounded_degree_graph(n, 3, seed=n)
    values = benchmark(evaluate_basic_unary, structure, TERM)
    benchmark.extra_info["order"] = n
    benchmark.extra_info["total"] = sum(values.values())
