"""E13 — the compile-once plan cache.

Claim under test: with the plan layer, the static analyses (stratification,
Lemma 6.4 decomposition, guard selection) are paid once per (query,
signature, options) and amortised across repeated evaluation; warm calls
skip compilation entirely.

Measured shape: the *cold* series compiles on every call (a fresh
:class:`~repro.plan.cache.PlanCache` per invocation), the *warm* series
shares one cache across all rounds, so its per-call latency drops by the
compile share reported in ``plan.compile.seconds``.  The bench runner
splits the two in ``BENCH_pr3.json`` via the plan-cache counters this
module's metrics snapshots carry.
"""

import pytest

from repro.core.evaluator import Foc1Evaluator
from repro.logic.parser import parse_formula
from repro.plan import PlanCache
from repro.sparse.classes import nearly_square_grid

from .conftest import SMALL_SIZES

#: A query with something for every plan stage: a stratification step
#: (the inner predicate atom), inclusion-exclusion, and a 3-variable
#: decomposition with index guards.
QUERY = parse_formula(
    "(E(x, y) & E(y, z) & @geq1(#(w). E(x, w))) | (x = y & E(y, z))"
)
VARIABLES = ["x", "y", "z"]

SENTENCE = parse_formula("forall x. @geq1(#(y). E(x, y))")


@pytest.mark.parametrize("n", SMALL_SIZES)
def test_count_cold_cache(benchmark, n):
    """Compile + execute on every call: a fresh plan cache each time."""
    structure = nearly_square_grid(n)

    def cold():
        engine = Foc1Evaluator(plan_cache=PlanCache())
        return engine.count(structure, QUERY, VARIABLES)

    count = benchmark(cold)
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["count"] = count
    benchmark.extra_info["series"] = "cold"


@pytest.mark.parametrize("n", SMALL_SIZES)
def test_count_warm_cache(benchmark, n):
    """Execute only: one shared cache, so every round after the first hits."""
    structure = nearly_square_grid(n)
    engine = Foc1Evaluator(plan_cache=PlanCache())
    engine.count(structure, QUERY, VARIABLES)  # prime the cache

    count = benchmark(engine.count, structure, QUERY, VARIABLES)
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["count"] = count
    benchmark.extra_info["series"] = "warm"
    stats = engine.plan_cache.stats()
    benchmark.extra_info["plan_cache_hit_rate"] = stats["hit_rate"]
    assert stats["hits"] >= 1


@pytest.mark.parametrize("n", SMALL_SIZES)
def test_model_check_warm_cache(benchmark, n):
    structure = nearly_square_grid(n)
    engine = Foc1Evaluator(plan_cache=PlanCache())
    engine.model_check(structure, SENTENCE)  # prime the cache

    answer = benchmark(engine.model_check, structure, SENTENCE)
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["answer"] = answer
    benchmark.extra_info["series"] = "warm"


def test_warm_cache_is_not_slower_than_cold():
    """Sanity (not a timing assertion): both paths agree on the answer and
    the warm engine's cache reports a non-trivial hit rate."""
    structure = nearly_square_grid(36)
    cold = Foc1Evaluator(plan_cache=PlanCache()).count(structure, QUERY, VARIABLES)
    engine = Foc1Evaluator(plan_cache=PlanCache())
    warm = [engine.count(structure, QUERY, VARIABLES) for _ in range(3)][-1]
    assert cold == warm
    assert engine.plan_cache.stats()["hit_rate"] > 0.5
