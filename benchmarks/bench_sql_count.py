"""E9 — Example 5.3: SQL COUNT workloads through FOC1(P).

Paper claim: FOC1(P) "is sufficiently strong to express standard
applications of SQL's COUNT operator", with tractable evaluation.

Measured: the three Example 5.3 queries compiled to FOC1(P) and executed by
the engine on growing databases, against plain-Python aggregation.  The
engine pays a constant-factor logic overhead but scales with the same
near-linear shape; answers are asserted identical.
"""

import random

import pytest

from repro.db.database import Database
from repro.db.schema import CUSTOMER, EXAMPLE_5_3_SCHEMA, ORDER
from repro.db.sqlcount import (
    group_by_count,
    join_group_count,
    reference_group_by_count,
    reference_join_group_count,
    total_counts,
)

DB_SIZES = (50, 150, 450)


def make_db(customers: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    db = Database(EXAMPLE_5_3_SCHEMA)
    cities = ["Berlin", "Paris", "Rome", "Oslo"]
    countries = ["DE", "FR", "IT", "NO"]
    for i in range(1, customers + 1):
        c = rng.randrange(4)
        db.insert(
            "Customer",
            (i, f"fn{i % 9}", f"ln{i % 7}", cities[c], countries[c], f"p{i}"),
        )
    for o in range(1, customers * 3 + 1):
        db.insert(
            "Order_",
            (10_000 + o, f"d{o % 11}", f"n{o}", rng.randint(1, customers), o),
        )
    return db


@pytest.mark.parametrize("customers", DB_SIZES)
def test_group_by_count_engine(benchmark, customers):
    db = make_db(customers, seed=customers)
    compiled = group_by_count(CUSTOMER, ["Country"], "Id")
    rows = benchmark(compiled.execute, db)
    assert sorted(rows) == reference_group_by_count(db, CUSTOMER, ["Country"], "Id")
    benchmark.extra_info["customers"] = customers
    benchmark.extra_info["groups"] = len(rows)


@pytest.mark.parametrize("customers", DB_SIZES)
def test_group_by_count_reference(benchmark, customers):
    db = make_db(customers, seed=customers)
    rows = benchmark(reference_group_by_count, db, CUSTOMER, ["Country"], "Id")
    benchmark.extra_info["customers"] = customers
    benchmark.extra_info["groups"] = len(rows)


@pytest.mark.parametrize("customers", DB_SIZES)
def test_total_counts_engine(benchmark, customers):
    db = make_db(customers, seed=customers)
    compiled = total_counts([CUSTOMER, ORDER])
    (row,) = benchmark(compiled.execute, db)
    assert row == (db.row_count("Customer"), db.row_count("Order_"))
    benchmark.extra_info["customers"] = customers


@pytest.mark.parametrize("customers", (50, 200))
def test_join_group_count_engine(benchmark, customers):
    db = make_db(customers, seed=customers)
    args = (CUSTOMER, ORDER, ("Id", "CustomerId"), ["FirstName"], "Id")
    compiled = join_group_count(*args, filters=[("City", "Berlin")])
    rows = benchmark(compiled.execute, db)
    assert sorted(rows) == reference_join_group_count(
        db, *args, [("City", "Berlin")]
    )
    benchmark.extra_info["customers"] = customers
    benchmark.extra_info["groups"] = len(rows)
