"""E3a — Theorem 5.5, model-checking side.

Paper claim: FOC1(P) model checking runs in f(||q||, eps) * ||A||^(1+eps) on
nowhere dense classes, while the generic bound is n^Theta(width).

Measured shape: on grids and random trees the locality-aware engine's time
grows near-linearly with ||A||; the brute-force evaluator blows up and is
only run on the small sizes.  On the dense control the engine degrades —
the frontier the paper proves.
"""

import pytest

from repro.logic.parser import parse_formula
from repro.sparse.classes import nearly_square_grid, random_tree, dense_random_graph

from .conftest import LARGE_SIZES, SMALL_SIZES

#: Every vertex has at most 12 two-step neighbours (width-3 counting).
SENTENCE = parse_formula(
    "forall x. @leq(#(y, z). (E(x, y) & E(y, z) & !(z = x)), 12)"
)

FAMILIES = {
    "grid": lambda n: nearly_square_grid(n),
    "tree": lambda n: random_tree(n, seed=1),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n", SMALL_SIZES + LARGE_SIZES)
def test_engine_scaling(benchmark, fast_engine, family, n):
    structure = FAMILIES[family](n)
    result = benchmark(fast_engine.model_check, structure, SENTENCE)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["size"] = structure.size()
    benchmark.extra_info["result"] = result


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n", SMALL_SIZES)
def test_brute_force_baseline(benchmark, brute_engine, family, n):
    structure = FAMILIES[family](n)
    result = benchmark(brute_engine.model_check, structure, SENTENCE)
    benchmark.extra_info["family"] = family
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["result"] = result


@pytest.mark.parametrize("n", SMALL_SIZES)
def test_dense_control(benchmark, fast_engine, n):
    """The engine on a dense G(n, 1/2): balls saturate, guards stop helping."""
    structure = dense_random_graph(n, 0.5, seed=1)
    result = benchmark(fast_engine.model_check, structure, SENTENCE)
    benchmark.extra_info["family"] = "dense_gnp"
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["result"] = result


def test_engine_beats_brute_force_at_crossover(fast_engine, brute_engine):
    """Sanity check of the headline direction at one fixed size."""
    import time

    structure = nearly_square_grid(64)

    start = time.perf_counter()
    fast_engine.model_check(structure, SENTENCE)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    brute_engine.model_check(structure, SENTENCE)
    brute_seconds = time.perf_counter() - start

    assert fast_seconds < brute_seconds
