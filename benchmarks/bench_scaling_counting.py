"""E3b — Corollary 5.6, counting side.

Paper claim: the counting problem for FOC1(P) is fixed-parameter almost
linear on nowhere dense classes; generically it is #W[1]-hard (already for
acyclic conjunctive queries, [5] in the paper).

Measured shape: counting 2-paths (|phi(A)| for a width-3 formula) grows
near-linearly with ||A|| for the engine on grids/trees, while brute force
is Theta(n^3) and only run small.
"""

import pytest

from repro.logic.parser import parse_formula, parse_term
from repro.sparse.classes import nearly_square_grid, random_tree

from .conftest import LARGE_SIZES, SMALL_SIZES

TWO_PATHS = parse_formula("E(x, y) & E(y, z) & !(x = z)")
DEGREE_HISTOGRAM_TERM = parse_term("#(x). @eq(#(y). E(x, y), 4)")

FAMILIES = {
    "grid": lambda n: nearly_square_grid(n),
    "tree": lambda n: random_tree(n, seed=3),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n", SMALL_SIZES + LARGE_SIZES)
def test_engine_counting(benchmark, fast_engine, family, n):
    structure = FAMILIES[family](n)
    count = benchmark(fast_engine.count, structure, TWO_PATHS, ["x", "y", "z"])
    benchmark.extra_info["family"] = family
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["count"] = count


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n", SMALL_SIZES)
def test_brute_force_counting(benchmark, brute_engine, family, n):
    structure = FAMILIES[family](n)
    count = benchmark(brute_engine.count, structure, TWO_PATHS, ["x", "y", "z"])
    benchmark.extra_info["family"] = family
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["count"] = count


@pytest.mark.parametrize("n", SMALL_SIZES + LARGE_SIZES)
def test_engine_ground_term_with_counting_condition(benchmark, fast_engine, n):
    """A depth-2 FOC1 term: how many vertices have degree exactly 4."""
    structure = nearly_square_grid(n)
    value = benchmark(
        fast_engine.ground_term_value, structure, DEGREE_HISTOGRAM_TERM
    )
    benchmark.extra_info["order"] = structure.order()
    benchmark.extra_info["degree_4_vertices"] = value


def test_counts_agree_between_engines(fast_engine, brute_engine):
    structure = nearly_square_grid(36)
    assert fast_engine.count(structure, TWO_PATHS, ["x", "y", "z"]) == (
        brute_engine.count(structure, TWO_PATHS, ["x", "y", "z"])
    )
