"""Example 5.3 end-to-end: SQL COUNT statements as FOC1(P)-queries.

Run with:  python examples/sql_count_queries.py

Builds the paper's Customer/Order database, compiles the three SQL
statements of Example 5.3 to FOC1(P)-queries, evaluates them through the
engine, and cross-checks against plain-Python aggregation.
"""

import random
import time

from repro.db import (
    CUSTOMER,
    EXAMPLE_5_3_SCHEMA,
    ORDER,
    Database,
    group_by_count,
    join_group_count,
    reference_group_by_count,
    reference_join_group_count,
    reference_total_counts,
    total_counts,
)
from repro.logic import pretty


def build_shop(customers: int = 60, orders: int = 200, seed: int = 2026) -> Database:
    rng = random.Random(seed)
    cities = ["Berlin", "Paris", "Rome", "Oslo", "Wien"]
    countries = ["DE", "FR", "IT", "NO", "AT"]
    first = ["Ada", "Bo", "Cy", "Dee", "Ed", "Flo"]
    last = ["Smith", "Ngu", "Kahn", "Diaz"]
    db = Database(EXAMPLE_5_3_SCHEMA)
    for i in range(1, customers + 1):
        c = rng.randrange(len(cities))
        db.insert(
            "Customer",
            (i, rng.choice(first), rng.choice(last), cities[c], countries[c], f"+49-{i}"),
        )
    for o in range(1, orders + 1):
        db.insert(
            "Order_",
            (10_000 + o, f"2026-0{rng.randint(1, 6)}", f"N{o}", rng.randint(1, customers), rng.randint(5, 500)),
        )
    return db


def main() -> None:
    db = build_shop()

    print("=== Example 5.3 (1): customers per country ===")
    compiled = group_by_count(CUSTOMER, ["Country"], "Id")
    print("SQL:   ", compiled.description)
    print("FOC1 head term:", pretty(compiled.query.head_terms[0]))
    start = time.perf_counter()
    rows = sorted(compiled.execute(db))
    elapsed = time.perf_counter() - start
    assert rows == reference_group_by_count(db, CUSTOMER, ["Country"], "Id")
    for country, total in rows:
        print(f"  {country}: {total}")
    print(f"  ({elapsed * 1000:.1f} ms, matches plain-Python aggregation)")

    print("\n=== Example 5.3 (2): total customers and orders ===")
    compiled = total_counts([CUSTOMER, ORDER])
    print("SQL:   ", compiled.description)
    (row,) = compiled.execute(db)
    assert row == reference_total_counts(db, [CUSTOMER, ORDER])
    print(f"  No_Of_Customers = {row[0]}, No_Of_Orders = {row[1]}")

    print("\n=== Example 5.3 (3): orders per customer in Berlin ===")
    compiled = join_group_count(
        CUSTOMER,
        ORDER,
        join=("Id", "CustomerId"),
        group_columns=["FirstName", "LastName"],
        counted_column="Id",
        filters=[("City", "Berlin")],
    )
    print("SQL:   ", compiled.description)
    rows = sorted(compiled.execute(db))
    expected = reference_join_group_count(
        db,
        CUSTOMER,
        ORDER,
        ("Id", "CustomerId"),
        ["FirstName", "LastName"],
        "Id",
        [("City", "Berlin")],
    )
    assert rows == expected
    for first, last, total in rows:
        print(f"  {first} {last}: {total} order(s)")

    print("\n=== Beyond COUNT (open question 1): SUM and AVG ===")
    from repro.db.aggregates import group_by_aggregate, reference_group_by_aggregate

    for operation in ("sum", "avg"):
        query = group_by_aggregate(ORDER, ["OrderDate"], "TotalAmount", operation)
        rows = query.execute(db)
        assert rows == reference_group_by_aggregate(
            db, ORDER, ["OrderDate"], "TotalAmount", operation
        )
        print(f"  {operation.upper()}(TotalAmount) by OrderDate:")
        for date, value in rows[:3]:
            print(f"    {date}: {value:.1f}" if operation == "avg" else f"    {date}: {value}")


if __name__ == "__main__":
    main()
