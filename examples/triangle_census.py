"""Example 5.4 end-to-end: the coloured-digraph triangle census.

Run with:  python examples/triangle_census.py

Reproduces the paper's most intricate FOC1(P) example — nested counting
terms, a derived ground count, and a two-variable query head — on a random
coloured digraph, comparing the locality-aware engine against brute force.
"""

import time

from repro.core import BruteForceEvaluator, Foc1Evaluator
from repro.logic import pretty
from repro.logic.examples import (
    blue_neighbour_term,
    count_phi_triangles_equal_reds,
    example_5_4_query,
    phi_blue_balance,
    red_count_term,
    triangle_term,
)
from repro.sparse import coloured_digraph


def main() -> None:
    # n = 24 keeps the brute-force comparison honest but quick; the engine
    # itself handles thousands of nodes (see examples/nowhere_dense_scaling.py).
    graph = coloured_digraph(24, average_out_degree=2.5, seed=7)
    fast = Foc1Evaluator()
    brute = BruteForceEvaluator()

    print("Structure: coloured digraph,", graph.order(), "nodes,",
          len(graph.relation("E")), "edges")

    print("\nPaper terms (Example 5.4):")
    print("  t_R       =", pretty(red_count_term()))
    print("  t_Delta(x)=", pretty(triangle_term("x")))
    print("  t_B(x)    =", pretty(blue_neighbour_term("x")))

    reds = fast.ground_term_value(graph, red_count_term())
    print("\nTotal red nodes:", reds)

    balanced = fast.ground_term_value(graph, count_phi_triangles_equal_reds())
    print("Nodes whose triangle count equals the red count:", balanced)

    print("\nphi_{B,Delta,R}(x) =", pretty(phi_blue_balance("x")))
    witnesses = fast.count(graph, phi_blue_balance("x"), ["x"])
    print("Witnesses of phi_{B,Delta,R}:", witnesses)

    query = example_5_4_query()
    start = time.perf_counter()
    rows_fast = sorted(fast.evaluate_query(graph, query))
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    rows_brute = sorted(brute.evaluate_query(graph, query))
    brute_seconds = time.perf_counter() - start

    assert rows_fast == rows_brute
    print(f"\nQuery result: {len(rows_fast)} rows")
    for row in rows_fast[:5]:
        print("  (x, y, t_B(x)*t_Delta(y)) =", row)
    if len(rows_fast) > 5:
        print(f"  ... and {len(rows_fast) - 5} more")
    print(
        f"\nEngine: {fast_seconds:.3f}s   brute force: {brute_seconds:.3f}s   "
        f"speedup: {brute_seconds / max(fast_seconds, 1e-9):.0f}x"
    )


if __name__ == "__main__":
    main()
