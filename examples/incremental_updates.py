"""Open question (2) in action: maintaining counts under updates.

Run with:  python examples/incremental_updates.py

Builds a bounded-degree graph, maintains the per-vertex value of a counting
term under a stream of edge insertions/deletions, and reports how little
work each update needed — the locality dividend the paper's Section 9
speculates about.
"""

import random
import time

from repro.core.clterms import BasicClTerm
from repro.core.incremental import IncrementalUnaryCache
from repro.core.local_eval import evaluate_basic_unary
from repro.logic.builder import Rel
from repro.sparse.classes import bounded_degree_graph

E = Rel("E", 2)


def main() -> None:
    n = 600
    structure = bounded_degree_graph(n, 3, seed=11)
    term = BasicClTerm(
        variables=("y1", "y2"),
        psi=E("y1", "y2"),
        psi_radius=0,
        link_distance=1,
        edges=frozenset({(1, 2)}),
        unary=True,
    )
    print(f"Graph: {n} vertices, degree <= 3")
    print("Term: u(y1) = #(y2). (E(y1, y2) & dist(y1, y2) <= 1)  (out-degree)")

    cache = IncrementalUnaryCache(structure, term)
    rng = random.Random(5)
    nodes = list(structure.universe_order)

    updates = []
    for _ in range(40):
        u, v = rng.choice(nodes), rng.choice(nodes)
        if u != v:
            updates.append((u, v))

    start = time.perf_counter()
    for u, v in updates:
        if cache.structure.has_tuple("E", (u, v)):
            cache.delete("E", (u, v))
            cache.delete("E", (v, u))
        else:
            cache.insert("E", (u, v))
            cache.insert("E", (v, u))
    incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fresh = evaluate_basic_unary(cache.structure, term)
    single_recompute = time.perf_counter() - start
    assert fresh == cache.values, "cache out of sync!"

    applied = cache.stats.updates
    print(f"\nApplied {applied} effective updates in {incremental_seconds:.3f}s")
    print(
        f"Elements repaired per update: "
        f"{cache.stats.recomputed_elements / max(applied, 1):.1f} of {n} "
        f"({100 * cache.stats.recompute_ratio(n):.2f}%)"
    )
    print(f"One full recomputation costs {single_recompute:.3f}s — the cache")
    print(
        f"did {applied} updates for "
        f"{incremental_seconds / max(single_recompute, 1e-9):.1f}x the price of one."
    )
    print("\nFinal state verified against recompute-from-scratch: OK")


if __name__ == "__main__":
    main()
