"""A laptop-scale version of the paper's tractability story (Theorem 5.5).

Run with:  python examples/nowhere_dense_scaling.py

Three measurements on growing inputs:

1. FOC1(P) model checking + counting: the locality-aware engine vs the
   n^k brute force, on grids (nowhere dense) — the engine's near-linear
   scaling vs the baseline's blow-up.
2. The splitter game (Section 8): bounded rounds on sparse families,
   ~n rounds on cliques — the definition of the tractability frontier.
3. Sparse (r, 2r)-neighbourhood covers (Theorem 8.1): low degree on sparse
   families; one giant cluster on the dense control.
"""

import time

from repro.core import BruteForceEvaluator, Foc1Evaluator
from repro.logic import parse_formula
from repro.sparse import (
    cover_statistics,
    rounds_needed,
    sparse_cover,
)
from repro.sparse.classes import nearly_square_grid, random_tree
from repro.structures import complete_graph, grid_graph

SENTENCE = "forall x. @leq(#(y, z). (E(x, y) & E(y, z) & !(z = x)), 12)"
COUNT_FORMULA = "E(x, y) & E(y, z) & !(x = z)"


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def scaling_study() -> None:
    fast = Foc1Evaluator()
    brute = BruteForceEvaluator()
    sentence = parse_formula(SENTENCE)
    path_count = parse_formula(COUNT_FORMULA)

    print("=== FOC1 evaluation on grids: engine vs brute force ===")
    print(f"sentence: {SENTENCE}")
    print(f"{'n':>6} {'engine (s)':>12} {'brute (s)':>12}")
    for n in (25, 64, 144, 256):
        grid = nearly_square_grid(n)
        _, fast_time = timed(fast.model_check, grid, sentence)
        if n <= 64:
            _, brute_time = timed(brute.model_check, grid, sentence)
            brute_text = f"{brute_time:12.3f}"
        else:
            brute_text = "   (skipped)"
        print(f"{grid.order():>6} {fast_time:12.3f} {brute_text}")

    print("\n=== Counting 2-paths, engine only, larger grids ===")
    print(f"{'n':>6} {'count':>10} {'seconds':>9}")
    for n in (100, 400, 1600, 6400):
        grid = nearly_square_grid(n)
        total, seconds = timed(fast.count, grid, path_count, ["x", "y", "z"])
        print(f"{grid.order():>6} {total:>10} {seconds:9.3f}")


def splitter_study() -> None:
    print("\n=== Splitter game rounds at radius 2 (Section 8) ===")
    rows = [
        ("tree", random_tree(400, seed=1)),
        ("grid 20x20", grid_graph(20, 20)),
        ("clique K40", complete_graph(40)),
    ]
    for name, structure in rows:
        print(f"  {name:>10}: {rounds_needed(structure, 2)} rounds")


def cover_study() -> None:
    print("\n=== Sparse (2, 4)-neighbourhood covers (Theorem 8.1) ===")
    rows = [
        ("tree", random_tree(400, seed=1)),
        ("grid 20x20", grid_graph(20, 20)),
        ("clique K40", complete_graph(40)),
    ]
    header = f"  {'family':>10} {'clusters':>9} {'max deg':>8} {'biggest cluster':>16}"
    print(header)
    for name, structure in rows:
        stats = cover_statistics(sparse_cover(structure, 2))
        print(
            f"  {name:>10} {stats['clusters']:>9} {stats['max_degree']:>8} "
            f"{stats['largest_cluster']:>16}"
        )


def main() -> None:
    scaling_study()
    splitter_study()
    cover_study()


if __name__ == "__main__":
    main()
