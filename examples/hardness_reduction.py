"""Section 4 demo: encoding graphs into trees and strings.

Run with:  python examples/hardness_reduction.py

Shows the constructive content of Theorems 4.1 and 4.3: a graph G and an
FO sentence phi become a *tree* T_G (resp. a *string* S_G) and an
FOC({P=}) sentence phi-hat with G |= phi iff T_G |= phi-hat — demonstrating
why full FOC(P) counting is already intractable on trees and words, and why
the paper restricts to FOC1(P).
"""

from repro.core import Foc1Evaluator
from repro.hardness import (
    build_string,
    build_tree,
    reduce_to_string,
    reduce_to_tree,
)
from repro.logic import is_foc1, parse_formula, pretty, satisfies
from repro.structures import graph_structure

TRIANGLE_FREE = "!(exists x. exists y. exists z. (E(x, y) & E(y, z) & E(x, z)))"
HAS_ISOLATED = "exists x. !(exists y. E(x, y))"


def main() -> None:
    graph = graph_structure(
        [1, 2, 3, 4], [(1, 2), (2, 3), (3, 1), (3, 4)]
    )
    engine = Foc1Evaluator(check_fragment=False)

    print("G: 4 vertices, triangle 1-2-3 plus pendant 4")
    tree = build_tree(graph)
    print(f"T_G: {tree.tree.order()} vertices (height-3 tree; size is "
          f"quadratic in ||G||)")
    string = build_string(graph)
    print(f"S_G: the word {string.word!r}")

    for name, source in [("triangle-free", TRIANGLE_FREE), ("has isolated vertex", HAS_ISOLATED)]:
        phi = parse_formula(source)
        truth = satisfies(graph, phi)

        tree_structure, phi_tree = reduce_to_tree(graph, phi)
        tree_truth = engine.model_check(tree_structure, phi_tree)

        string_structure, phi_string = reduce_to_string(graph, phi)
        string_truth = engine.model_check(string_structure, phi_string)

        print(f"\nphi = {name}: {source}")
        print(f"  G  |= phi       : {truth}")
        print(f"  T_G |= phi-hat  : {tree_truth}   (match: {tree_truth == truth})")
        print(f"  S_G |= phi-hat  : {string_truth}   (match: {string_truth == truth})")
        print(f"  phi-hat in FOC1?: {is_foc1(phi_tree)}  "
              "(no — the encoding needs P= on two free variables, which is "
              "exactly what FOC1 forbids)")

    print("\nThe edge-encoding formula psi_E(x, x'):")
    from repro.hardness import psi_edge

    print(" ", pretty(psi_edge("x", "xp")))


if __name__ == "__main__":
    main()
