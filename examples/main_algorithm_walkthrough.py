"""A guided tour of the Section 8.2 machinery on one concrete input.

Run with:  python examples/main_algorithm_walkthrough.py

Walks through every ingredient of the paper's main algorithm on a random
tree: the sparse neighbourhood cover (Theorem 8.1), the splitter game
(Section 8), one removal surgery with the Lemma 7.9 term rewriting, and
finally the composed loop — checking at each step that the machinery says
what the theorems promise.
"""

from repro.core.clterms import BasicClTerm
from repro.core.local_eval import evaluate_basic_unary
from repro.core.main_algorithm import (
    MainAlgorithmStats,
    evaluate_unary_main_algorithm,
)
from repro.core.removal import removal_unary_term, remove_element
from repro.logic.builder import Rel
from repro.logic.printer import pretty
from repro.sparse.classes import random_tree
from repro.sparse.covers import cover_statistics, sparse_cover
from repro.sparse.splitter import rounds_needed

E = Rel("E", 2)


def main() -> None:
    structure = random_tree(150, seed=3)
    print(f"Structure: random tree, {structure.order()} vertices")

    term = BasicClTerm(
        variables=("y1", "y2"),
        psi=E("y1", "y2"),
        psi_radius=0,
        link_distance=1,
        edges=frozenset({(1, 2)}),
        unary=True,
    )
    print("Term: u(y1) = #(y2). (E(y1,y2) ∧ delta_connected)   (degree)")

    print("\n-- Step 1: the splitter game certifies sparseness (Section 8)")
    rounds = rounds_needed(structure, radius=2)
    print(f"   Splitter wins the radius-2 game in {rounds} rounds (bounded, not ~n)")

    print("\n-- Step 2: a sparse (r, 2r)-neighbourhood cover (Theorem 8.1)")
    cover = sparse_cover(structure, 2)
    cover.verify(check_radius=4)
    stats = cover_statistics(cover)
    print(f"   {stats['clusters']} clusters, max degree {stats['max_degree']}, "
          f"max radius {stats['max_cluster_radius']} (bound: 4) — verified")

    print("\n-- Step 3: one removal surgery (Lemmas 7.8/7.9)")
    d = cover.centres[0]
    removed = remove_element(structure, d, radius=2)
    print(f"   removed element {d}: {structure.order()} -> {removed.order()} vertices,")
    print(f"   signature grew from {len(structure.signature)} to "
          f"{len(removed.signature)} symbols (the R~_I splits plus S_1, S_2)")
    ground_parts, unary_parts = removal_unary_term(
        "y1", ("y2",), term.body(), radius=2
    )
    print(f"   Lemma 7.9 rewrites u into {len(unary_parts)} unary + "
          f"{len(ground_parts)} ground parts, e.g.:")
    print(f"     {pretty(unary_parts[0].count_term())}")

    print("\n-- Step 4: the composed loop (Section 8.2)")
    loop_stats = MainAlgorithmStats()
    values = evaluate_unary_main_algorithm(
        structure, term, depth=1, small_threshold=8, stats=loop_stats
    )
    reference = evaluate_basic_unary(structure, term)
    assert values == reference
    print(f"   clusters processed: {loop_stats.clusters_processed}, "
          f"removals: {loop_stats.removals}, "
          f"base-case evaluations: {loop_stats.base_case_elements} element-values")
    print("   result equals direct ball-exploration evaluation: OK")

    degree_histogram = {}
    for value in values.values():
        degree_histogram[value] = degree_histogram.get(value, 0) + 1
    print("\nDegree histogram of the tree (computed by the full pipeline):")
    for degree in sorted(degree_histogram):
        print(f"   degree {degree}: {degree_histogram[degree]} vertices")


if __name__ == "__main__":
    main()
