"""Quickstart: FOC1(P) formulas and queries on a small graph.

Run with:  python examples/quickstart.py

Covers the basic workflow: build a structure, write cardinality formulas
(both through the builder DSL and the text parser), model-check, count, and
evaluate a query that returns counting terms per answer tuple.
"""

from repro import (
    Foc1Evaluator,
    Foc1Query,
    Rel,
    count,
    exists,
    graph_structure,
    parse_formula,
    pretty,
    variables,
)


def main() -> None:
    # A small social graph: edges are directed "follows" relationships.
    follows = graph_structure(
        ["ada", "bob", "cyd", "dan", "eve"],
        [
            ("ada", "bob"),
            ("bob", "cyd"),
            ("cyd", "ada"),
            ("dan", "ada"),
            ("dan", "bob"),
            ("eve", "dan"),
        ],
        symmetric=False,
    )
    engine = Foc1Evaluator()

    # --- formulas through the builder DSL ------------------------------------
    E = Rel("E", 2)
    x, y, z = variables("x y z")

    followers = count([y], E(y, x))           # #(y). E(y, x)
    follows_two = count([y], E(x, y)).geq1()  # at least one followee

    print("Does everyone follow somebody?")
    sentence = parse_formula("forall x. @geq1(#(y). E(x, y))")
    print(" ", pretty(sentence), "->", engine.model_check(follows, sentence))

    print("\nIs there a user with at least 2 followers? (builder DSL)")
    popular = exists(x, followers.geq1() & count([y], E(y, x)).gt(1))
    print(" ", pretty(popular), "->", engine.model_check(follows, popular))

    # --- counting --------------------------------------------------------------
    mutual = parse_formula("E(x, y) & E(y, x)")
    print("\nMutual-follow pairs:", engine.count(follows, mutual, ["x", "y"]))

    # --- a query returning counting terms ----------------------------------------
    query = Foc1Query(
        head_variables=("x",),
        head_terms=(followers,),
        condition=follows_two,
    )
    print("\nFollower counts for users who follow somebody:")
    for row in sorted(engine.evaluate_query(follows, query)):
        print(f"  {row[0]:>4}: {row[1]} follower(s)")


if __name__ == "__main__":
    main()
